//! Deployment-quality metrics.

use laacad_wsn::Network;

/// Sensing-range statistics across a network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadiusStats {
    /// Smallest sensing range.
    pub min: f64,
    /// Largest sensing range — the k-CSDP objective `R`.
    pub max: f64,
    /// Mean sensing range.
    pub mean: f64,
    /// Standard deviation of sensing ranges.
    pub std_dev: f64,
}

impl std::fmt::Display for RadiusStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "r ∈ [{:.4}, {:.4}], mean {:.4} ± {:.4}",
            self.min, self.max, self.mean, self.std_dev
        )
    }
}

/// Computes sensing-range statistics (zeroes for an empty network).
pub fn radius_stats(net: &Network) -> RadiusStats {
    let n = net.len();
    if n == 0 {
        return RadiusStats {
            min: 0.0,
            max: 0.0,
            mean: 0.0,
            std_dev: 0.0,
        };
    }
    let radii = net.sensing_radii();
    let min = radii.iter().copied().fold(f64::INFINITY, f64::min);
    let max = radii.iter().copied().fold(0.0, f64::max);
    let mean = radii.iter().sum::<f64>() / n as f64;
    let var = radii.iter().map(|r| (r - mean) * (r - mean)).sum::<f64>() / n as f64;
    RadiusStats {
        min,
        max,
        mean,
        std_dev: var.sqrt(),
    }
}

/// Coverage redundancy: `Σ_i π r_i² / (k · |A|)` — how much sensing area
/// the deployment spends per unit of demanded coverage (1.0 would be a
/// perfect, overlap-free partition; real disks always overlap).
pub fn redundancy(net: &Network, area: f64, k: usize) -> f64 {
    assert!(area > 0.0 && k >= 1, "need positive area and k ≥ 1");
    let total: f64 = net
        .sensing_radii()
        .iter()
        .map(|&r| std::f64::consts::PI * r * r)
        .sum();
    total / (k as f64 * area)
}

/// Sizes of co-location clusters: nodes within `merge_radius` of each
/// other (transitively) count as one cluster.
///
/// Fig. 5's "even clustering" observation predicts that after LAACAD
/// converges with coverage degree `k`, the histogram concentrates on
/// cluster size `k`.
pub fn cluster_sizes(net: &Network, merge_radius: f64) -> Vec<usize> {
    let n = net.len();
    let positions = net.positions();
    // Union–find over proximity.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for i in 0..n {
        for j in i + 1..n {
            if positions[i].distance(positions[j]) <= merge_radius {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    parent[ri] = rj;
                }
            }
        }
    }
    let mut counts = std::collections::HashMap::new();
    for i in 0..n {
        let root = find(&mut parent, i);
        *counts.entry(root).or_insert(0usize) += 1;
    }
    let mut sizes: Vec<usize> = counts.into_values().collect();
    sizes.sort_unstable();
    sizes
}

/// Histogram of cluster sizes: `histogram[s]` = number of clusters of
/// size `s` (index 0 unused).
pub fn cluster_histogram(net: &Network, merge_radius: f64) -> Vec<usize> {
    let sizes = cluster_sizes(net, merge_radius);
    let max = sizes.iter().copied().max().unwrap_or(0);
    let mut hist = vec![0usize; max + 1];
    for s in sizes {
        hist[s] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use laacad_geom::Point;
    use laacad_wsn::NodeId;

    #[test]
    fn stats_of_known_radii() {
        let mut net = Network::from_positions(
            1.0,
            [
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(2.0, 0.0),
            ],
        );
        for (i, r) in [1.0, 2.0, 3.0].into_iter().enumerate() {
            net.set_sensing_radius(NodeId(i), r);
        }
        let s = radius_stats(&net);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.std_dev - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn redundancy_of_perfect_partition_is_one() {
        // One node with disk area exactly equal to |A| and k = 1.
        let mut net = Network::from_positions(1.0, [Point::new(0.0, 0.0)]);
        let r = (1.0 / std::f64::consts::PI).sqrt();
        net.set_sensing_radius(NodeId(0), r);
        assert!((redundancy(&net, 1.0, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clusters_of_k_colocated_groups() {
        // Two tight pairs and one singleton.
        let net = Network::from_positions(
            1.0,
            [
                Point::new(0.0, 0.0),
                Point::new(0.001, 0.0),
                Point::new(1.0, 1.0),
                Point::new(1.0, 1.001),
                Point::new(5.0, 5.0),
            ],
        );
        let sizes = cluster_sizes(&net, 0.01);
        assert_eq!(sizes, vec![1, 2, 2]);
        let hist = cluster_histogram(&net, 0.01);
        assert_eq!(hist[1], 1);
        assert_eq!(hist[2], 2);
    }

    #[test]
    fn transitive_clusters_merge() {
        // A chain of nodes each within merge radius of the next.
        let net = Network::from_positions(1.0, (0..4).map(|i| Point::new(i as f64 * 0.009, 0.0)));
        assert_eq!(cluster_sizes(&net, 0.01), vec![4]);
    }

    #[test]
    fn empty_network_edge_cases() {
        let net = Network::new(1.0);
        let s = radius_stats(&net);
        assert_eq!(s.max, 0.0);
        assert!(cluster_sizes(&net, 0.1).is_empty());
        assert_eq!(cluster_histogram(&net, 0.1), vec![0]);
    }
}
