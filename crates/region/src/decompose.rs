//! Hertel–Mehlhorn convex decomposition.
//!
//! Starting from the triangulation, adjacent pieces are merged across
//! shared edges whenever the union stays convex. The result is at most
//! 4× the optimal number of convex pieces — plenty good for clipping
//! dominating regions, where fewer pieces simply mean fewer convex–convex
//! intersections per node per round.

use crate::triangulate::Triangle;
use laacad_geom::{Point, Polygon};
use std::collections::BTreeMap;

/// Key for matching shared edges between pieces: quantized endpoint pair,
/// order-normalized.
fn edge_key(a: Point, b: Point) -> ((i64, i64), (i64, i64)) {
    let q = |p: Point| ((p.x * 1e9).round() as i64, (p.y * 1e9).round() as i64);
    let (ka, kb) = (q(a), q(b));
    if ka <= kb {
        (ka, kb)
    } else {
        (kb, ka)
    }
}

/// Merges two CCW loops that share the directed edge `piece_a[i] →
/// piece_a[i+1]` (present reversed in `piece_b`), returning the union loop.
fn merge_loops(a: &[Point], ai: usize, b: &[Point], bi: usize) -> Vec<Point> {
    // a: ... a[ai] a[ai+1] ...   b: ... b[bi] b[bi+1] ... with
    // a[ai] == b[bi+1] and a[ai+1] == b[bi].
    let na = a.len();
    let nb = b.len();
    let mut out: Vec<Point> = Vec::with_capacity(na + nb - 2);
    // Walk a from a[ai+1] all the way around to a[ai] (inclusive).
    for k in 0..na {
        out.push(a[(ai + 1 + k) % na]);
    }
    // Then b's interior from b[bi+2] around to b[bi-1]: skip the shared
    // edge's two vertices (already present).
    for k in 0..nb - 2 {
        out.push(b[(bi + 2 + k) % nb]);
    }
    out
}

fn is_convex_loop(vs: &[Point]) -> bool {
    let n = vs.len();
    if n < 3 {
        return false;
    }
    (0..n)
        .all(|i| laacad_geom::predicates::cross3(vs[i], vs[(i + 1) % n], vs[(i + 2) % n]) >= -1e-9)
}

fn drop_collinear(vs: &[Point]) -> Vec<Point> {
    let n = vs.len();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let prev = vs[(i + n - 1) % n];
        let cur = vs[i];
        let next = vs[(i + 1) % n];
        if laacad_geom::predicates::cross3(prev, cur, next).abs() > 1e-12
            || prev.distance(next) < 1e-12
        {
            out.push(cur);
        }
    }
    out
}

/// Greedy Hertel–Mehlhorn merge of a triangle soup into convex polygons.
///
/// # Example
///
/// ```
/// use laacad_geom::{Point, Polygon};
/// use laacad_region::{decompose::convex_decomposition, triangulate::triangulate_with_holes};
/// let sq = Polygon::rectangle(Point::new(0.0, 0.0), Point::new(2.0, 2.0)).unwrap();
/// let pieces = convex_decomposition(&triangulate_with_holes(&sq, &[]));
/// // A square merges back into a single convex piece.
/// assert_eq!(pieces.len(), 1);
/// assert!((pieces[0].area() - 4.0).abs() < 1e-9);
/// ```
pub fn convex_decomposition(triangles: &[Triangle]) -> Vec<Polygon> {
    let mut pieces: Vec<Option<Vec<Point>>> = triangles.iter().map(|t| Some(t.to_vec())).collect();

    /// Quantized directed edge -> every (piece, edge index) that uses it.
    /// Ordered map: the greedy merge is order-sensitive, so iteration must
    /// be deterministic for runs to be byte-reproducible.
    type EdgeMap = BTreeMap<((i64, i64), (i64, i64)), Vec<(usize, usize)>>;

    let mut merged_any = true;
    while merged_any {
        merged_any = false;
        // Rebuild the edge → (piece, edge index) map each pass; pass count
        // is small (each merge shrinks the piece count).
        let mut edges: EdgeMap = EdgeMap::new();
        for (pi, piece) in pieces.iter().enumerate() {
            let Some(vs) = piece else { continue };
            let n = vs.len();
            for i in 0..n {
                edges
                    .entry(edge_key(vs[i], vs[(i + 1) % n]))
                    .or_default()
                    .push((pi, i));
            }
        }
        for (_, owners) in edges {
            if owners.len() != 2 {
                continue;
            }
            let (pa, ai) = owners[0];
            let (pb, bi) = owners[1];
            if pa == pb {
                continue;
            }
            let (Some(a), Some(b)) = (pieces[pa].clone(), pieces[pb].clone()) else {
                continue;
            };
            // Guard against stale indices after a prior merge this pass.
            if ai >= a.len() || bi >= b.len() {
                continue;
            }
            let ka = edge_key(a[ai], a[(ai + 1) % a.len()]);
            let kb = edge_key(b[bi], b[(bi + 1) % b.len()]);
            if ka != kb {
                continue;
            }
            let merged = drop_collinear(&merge_loops(&a, ai, &b, bi));
            if is_convex_loop(&merged) && merged.len() >= 3 {
                pieces[pa] = Some(merged);
                pieces[pb] = None;
                merged_any = true;
            }
        }
    }

    pieces
        .into_iter()
        .flatten()
        .filter_map(|vs| Polygon::new(vs).ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triangulate::triangulate_with_holes;

    #[test]
    fn l_shape_becomes_few_convex_pieces() {
        let l = Polygon::new([
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 1.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 2.0),
            Point::new(0.0, 2.0),
        ])
        .unwrap();
        let pieces = convex_decomposition(&triangulate_with_holes(&l, &[]));
        assert!(pieces.len() <= 3, "got {} pieces", pieces.len());
        let area: f64 = pieces.iter().map(|p| p.area()).sum();
        assert!((area - 3.0).abs() < 1e-9);
        for p in &pieces {
            assert!(p.is_convex());
        }
    }

    #[test]
    fn holed_square_pieces_avoid_the_hole() {
        let outer = Polygon::rectangle(Point::new(0.0, 0.0), Point::new(4.0, 4.0)).unwrap();
        let hole = Polygon::rectangle(Point::new(1.0, 1.0), Point::new(3.0, 3.0)).unwrap();
        let pieces =
            convex_decomposition(&triangulate_with_holes(&outer, std::slice::from_ref(&hole)));
        let area: f64 = pieces.iter().map(|p| p.area()).sum();
        assert!((area - 12.0).abs() < 1e-9);
        for p in &pieces {
            assert!(p.is_convex());
            let c = p.centroid();
            assert!(!(hole.contains(c) && hole.closest_boundary_point(c).distance(c) > 1e-9));
        }
    }

    #[test]
    fn star_decomposition_is_area_preserving() {
        let mut pts = Vec::new();
        for i in 0..10 {
            let th = i as f64 / 10.0 * std::f64::consts::TAU;
            let r = if i % 2 == 0 { 2.0 } else { 0.8 };
            pts.push(Point::new(r * th.cos(), r * th.sin()));
        }
        let star = Polygon::new(pts).unwrap();
        let tris = triangulate_with_holes(&star, &[]);
        let pieces = convex_decomposition(&tris);
        let area: f64 = pieces.iter().map(|p| p.area()).sum();
        assert!((area - star.area()).abs() < 1e-9);
        assert!(pieces.len() < tris.len(), "merging must reduce piece count");
    }

    #[test]
    fn pieces_tile_without_overlap() {
        // Random-ish sample points must fall in exactly one piece
        // (interior) for a partition.
        let l = Polygon::new([
            Point::new(0.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(3.0, 1.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 3.0),
            Point::new(0.0, 3.0),
        ])
        .unwrap();
        let pieces = convex_decomposition(&triangulate_with_holes(&l, &[]));
        let probes = [
            Point::new(0.5, 0.5),
            Point::new(2.5, 0.5),
            Point::new(0.5, 2.5),
            Point::new(0.9, 0.9),
        ];
        for q in probes {
            let strictly_in = pieces
                .iter()
                .filter(|p| p.contains(q) && p.closest_boundary_point(q).distance(q) > 1e-9)
                .count();
            assert!(
                strictly_in <= 1,
                "point {q} in {strictly_in} piece interiors"
            );
            if l.contains(q) {
                let any = pieces.iter().any(|p| p.contains(q));
                assert!(any, "point {q} lost by decomposition");
            }
        }
    }
}
