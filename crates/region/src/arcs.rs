//! Circle ∩ region angular clipping.
//!
//! Fig. 3 of the paper: a boundary node running the Algorithm 2 ring check
//! must only verify the half-radius arc *within the target area* — the arc
//! outside `A` would never become dominated and the ring would expand
//! forever. This module computes exactly which arcs of a circle lie inside
//! a [`Region`].

use crate::Region;
use laacad_geom::angle::normalize_angle;
use laacad_geom::{Arc, Circle};
use std::f64::consts::TAU;

/// Returns the arcs of `circle` whose points lie inside `region`.
///
/// The result is a set of disjoint CCW arcs; a circle fully inside yields
/// one full-circle arc, a circle fully outside yields an empty vector.
///
/// # Example
///
/// ```
/// use laacad_geom::{Circle, Point};
/// use laacad_region::{arcs::arcs_inside_region, Region};
/// let region = Region::square(10.0).unwrap();
/// // Circle centered on the left boundary: only its right half is inside.
/// let c = Circle::new(Point::new(0.0, 5.0), 1.0);
/// let arcs = arcs_inside_region(&c, &region);
/// let total: f64 = arcs.iter().map(|a| a.span()).sum();
/// assert!((total - std::f64::consts::PI).abs() < 1e-6);
/// ```
pub fn arcs_inside_region(circle: &Circle, region: &Region) -> Vec<Arc> {
    let mut out = Vec::new();
    arcs_inside_region_into(circle, region, &mut Vec::new(), &mut out);
    out
}

/// [`arcs_inside_region`] into caller-owned buffers: the result lands in
/// `out` (cleared first) with `cuts` as crossing-angle scratch — the
/// allocation-free form the ring-domination hot path uses. Results are
/// identical to the allocating form.
pub fn arcs_inside_region_into(
    circle: &Circle,
    region: &Region,
    cuts: &mut Vec<f64>,
    out: &mut Vec<Arc>,
) {
    out.clear();
    if circle.radius <= 0.0 {
        if region.contains(circle.center) {
            out.push(Arc::full());
        }
        return;
    }
    // Fast path: bounding-box disjointness.
    let bb = region.bounding_box().inflated(circle.radius);
    if !bb.contains(circle.center) {
        return;
    }

    // Collect crossing angles against every boundary edge (outer + holes).
    cuts.clear();
    for e in region.outer().edges() {
        circle.intersect_segment_angles_into(&e, cuts);
    }
    for h in region.holes() {
        for e in h.edges() {
            circle.intersect_segment_angles_into(&e, cuts);
        }
    }

    if cuts.is_empty() {
        // No boundary crossing: all-in or all-out, decided by any point.
        if region.contains(circle.point_at(0.0)) {
            out.push(Arc::full());
        }
        return;
    }

    cuts.sort_unstable_by(f64::total_cmp);
    cuts.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
    let n = cuts.len();
    for i in 0..n {
        let a = cuts[i];
        let b = if i + 1 < n {
            cuts[i + 1]
        } else {
            cuts[0] + TAU
        };
        let span = b - a;
        if span <= 1e-12 {
            continue;
        }
        let mid = normalize_angle(a + 0.5 * span);
        if region.contains(circle.point_at(mid)) {
            out.push(Arc::new(a, span));
        }
    }
    merge_adjacent_in_place(out);
}

/// Total angular measure (radians) of a set of disjoint arcs.
pub fn total_span(arcs: &[Arc]) -> f64 {
    arcs.iter().map(|a| a.span()).sum()
}

/// Merges arcs that touch end-to-start (within tolerance) into single
/// arcs, in place (no allocation).
fn merge_adjacent_in_place(arcs: &mut Vec<Arc>) {
    if arcs.len() <= 1 {
        return;
    }
    arcs.sort_by(|x, y| x.start().total_cmp(&y.start()));
    let mut w = 0; // arcs[..w] is the merged prefix
    for i in 0..arcs.len() {
        let a = arcs[i];
        if w > 0 {
            let last = arcs[w - 1];
            let gap = normalize_angle(a.start() - last.start()) - last.span();
            if gap.abs() < 1e-9 {
                let combined = (last.span() + a.span()).min(TAU);
                arcs[w - 1] = Arc::new(last.start(), combined);
                continue;
            }
        }
        arcs[w] = a;
        w += 1;
    }
    arcs.truncate(w);
    // Wrap-around merge: last arc ending at first arc's start.
    if arcs.len() >= 2 {
        let first = arcs[0];
        let last = *arcs.last().expect("len >= 2");
        let gap = normalize_angle(first.start() - last.start()) - last.span();
        if gap.abs() < 1e-9 {
            let combined = (last.span() + first.span()).min(TAU);
            arcs[0] = Arc::new(last.start(), combined);
            arcs.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laacad_geom::{Point, Polygon};
    use std::f64::consts::PI;

    #[test]
    fn interior_circle_is_full() {
        let r = Region::square(10.0).unwrap();
        let arcs = arcs_inside_region(&Circle::new(Point::new(5.0, 5.0), 1.0), &r);
        assert_eq!(arcs.len(), 1);
        assert!((total_span(&arcs) - TAU).abs() < 1e-12);
    }

    #[test]
    fn exterior_circle_is_empty() {
        let r = Region::square(10.0).unwrap();
        let arcs = arcs_inside_region(&Circle::new(Point::new(50.0, 50.0), 1.0), &r);
        assert!(arcs.is_empty());
    }

    #[test]
    fn corner_circle_keeps_a_quarter() {
        let r = Region::square(10.0).unwrap();
        let arcs = arcs_inside_region(&Circle::new(Point::new(0.0, 0.0), 1.0), &r);
        assert!((total_span(&arcs) - PI / 2.0).abs() < 1e-6);
        // The quarter arc is the first quadrant.
        assert!(arcs.iter().any(|a| a.contains(PI / 4.0)));
        assert!(!arcs.iter().any(|a| a.contains(PI)));
    }

    #[test]
    fn circle_over_hole_excludes_hole_arcs() {
        let outer = Polygon::rectangle(Point::new(0.0, 0.0), Point::new(10.0, 10.0)).unwrap();
        let hole = Polygon::rectangle(Point::new(4.0, 4.0), Point::new(6.0, 6.0)).unwrap();
        let r = Region::with_holes(outer, vec![hole]).unwrap();
        // Radius between the hole's edge distance (1.0) and its corner
        // distance (√2): the circle crosses each hole edge twice.
        let c = Circle::new(Point::new(5.0, 5.0), 1.2);
        let arcs = arcs_inside_region(&c, &r);
        let span = total_span(&arcs);
        assert!(span > 0.0 && span < TAU, "span {span}");
        // Axis directions (e.g. (6.2, 5)) sit inside the hole → excluded;
        // diagonal directions (5±0.85, 5±0.85) are free. Verify exactly:
        for i in 0..720 {
            let th = (i as f64 + 0.5) / 720.0 * TAU;
            let inside = r.contains(c.point_at(th));
            let in_arcs = arcs.iter().any(|a| a.contains(th));
            assert_eq!(inside, in_arcs, "θ={th}");
        }
    }

    #[test]
    fn brute_force_agreement_on_boundary_circle() {
        let r = Region::square(10.0).unwrap();
        for (cx, cy, rad) in [
            (0.0, 5.0, 2.0),
            (10.0, 10.0, 3.0),
            (5.0, 0.0, 1.0),
            (9.5, 5.0, 1.0),
        ] {
            let c = Circle::new(Point::new(cx, cy), rad);
            let arcs = arcs_inside_region(&c, &r);
            for i in 0..720 {
                let th = (i as f64 + 0.5) / 720.0 * TAU;
                let inside = r.contains(c.point_at(th));
                let in_arcs = arcs.iter().any(|a| a.contains(th));
                assert_eq!(inside, in_arcs, "center ({cx},{cy}) r {rad} θ={th}");
            }
        }
    }

    #[test]
    fn zero_radius_circle_degenerates_to_point_test() {
        let r = Region::square(10.0).unwrap();
        assert_eq!(
            arcs_inside_region(&Circle::point(Point::new(5.0, 5.0)), &r).len(),
            1
        );
        assert!(arcs_inside_region(&Circle::point(Point::new(50.0, 5.0)), &r).is_empty());
    }
}
