//! Ear-clipping triangulation with hole bridging.
//!
//! The decomposition pipeline is: bridge holes into the outer boundary to
//! get one simple polygon → ear-clip into triangles → (optionally) merge
//! triangles into convex pieces ([`crate::decompose`]). Correctness is
//! checked by area preservation and point-location property tests.

use laacad_geom::predicates::cross3;
use laacad_geom::{Point, Polygon, Segment};

/// A triangle produced by the triangulator (counter-clockwise).
pub type Triangle = [Point; 3];

/// Signed area of a triangle (positive = counter-clockwise).
fn tri_area(t: &Triangle) -> f64 {
    0.5 * cross3(t[0], t[1], t[2])
}

/// Returns `true` when `p` is strictly inside triangle `t` (CCW).
fn strictly_inside(t: &Triangle, p: Point) -> bool {
    let eps = 1e-12;
    cross3(t[0], t[1], p) > eps && cross3(t[1], t[2], p) > eps && cross3(t[2], t[0], p) > eps
}

/// Even–odd point-in-loop test. Works on bridged loops: the two coincident
/// bridge edges flip the parity twice, which is exactly right (both sides
/// of a bridge are interior).
fn point_in_loop(vs: &[Point], p: Point) -> bool {
    let n = vs.len();
    let mut inside = false;
    let mut j = n - 1;
    for i in 0..n {
        let a = vs[i];
        let b = vs[j];
        if (a.y > p.y) != (b.y > p.y) {
            let x_cross = a.x + (p.y - a.y) / (b.y - a.y) * (b.x - a.x);
            if p.x < x_cross {
                inside = !inside;
            }
        }
        j = i;
    }
    inside
}

/// Returns `true` when the candidate diagonal `prev → next` (for the ear
/// at index `i`) is admissible: it properly crosses no loop edge, no loop
/// vertex sits in its interior, and its midpoint is inside the loop.
///
/// This direct validation is what makes ear clipping robust on *bridged*
/// loops, whose duplicated vertices defeat the usual
/// reflex-vertex-in-triangle test.
fn diagonal_is_valid(vs: &[Point], i: usize) -> bool {
    let n = vs.len();
    let prev = vs[(i + n - 1) % n];
    let next = vs[(i + 1) % n];
    let d = next - prev;
    let len_sq = d.norm_sq();
    if len_sq <= 1e-24 {
        return false;
    }
    let eps = 1e-9;
    for j in 0..n {
        // Skip the two edges incident to the clipped vertex and the two
        // edges incident to the diagonal's endpoints.
        if j == i || (j + 1) % n == i || j == (i + 1) % n || (j + 1) % n == (i + n - 1) % n {
            continue;
        }
        let a = vs[j];
        let b = vs[(j + 1) % n];
        let e = b - a;
        let denom = d.cross(e);
        let qp = a - prev;
        if denom.abs() > 1e-15 {
            let t = qp.cross(e) / denom; // position along the diagonal
            let u = qp.cross(d) / denom; // position along the edge
                                         // Proper crossing, or an edge endpoint in the diagonal interior.
            if t > eps && t < 1.0 - eps && u > -eps && u < 1.0 + eps {
                // Allow touching when the contact point coincides with a
                // diagonal endpoint (can't happen with t interior) — so any
                // hit here invalidates.
                return false;
            }
        } else {
            // Parallel: reject collinear overlap beyond a shared endpoint.
            if qp.cross(d).abs() <= 1e-12 * (1.0 + len_sq.sqrt()) {
                // Collinear; check 1-D overlap of [prev,next] and [a,b].
                let proj = |p: Point| (p - prev).dot(d) / len_sq;
                let (mut s0, mut s1) = (proj(a), proj(b));
                if s0 > s1 {
                    std::mem::swap(&mut s0, &mut s1);
                }
                if s0 < 1.0 - eps && s1 > eps {
                    return false;
                }
            }
        }
    }
    // No vertex may sit in the open diagonal (T-junction).
    for (j, &p) in vs.iter().enumerate() {
        if j == i || j == (i + 1) % n || j == (i + n - 1) % n {
            continue;
        }
        let t = (p - prev).dot(d) / len_sq;
        if t > eps && t < 1.0 - eps {
            let dist = (d.cross(p - prev)).abs() / len_sq.sqrt();
            if dist <= 1e-12 * (1.0 + len_sq.sqrt()) {
                return false;
            }
        }
    }
    // The diagonal must run through the interior.
    point_in_loop(vs, prev.midpoint(next))
}

/// Ear-clips a simple CCW vertex loop into triangles.
///
/// Robust to collinear runs (zero-area ears are clipped away). Returns an
/// empty vector when the input loop is degenerate beyond repair.
pub fn ear_clip(loop_vertices: &[Point]) -> Vec<Triangle> {
    let mut vs: Vec<Point> = loop_vertices.to_vec();
    let mut out: Vec<Triangle> = Vec::with_capacity(vs.len().saturating_sub(2));
    let mut guard = 0usize;
    while vs.len() > 3 {
        let n = vs.len();
        guard += 1;
        if guard > 4 * n * n {
            // Numerically stuck (should not happen on valid inputs);
            // bail with what we have rather than loop forever.
            break;
        }
        let mut clipped = false;
        for i in 0..n {
            let prev = vs[(i + n - 1) % n];
            let cur = vs[i];
            let next = vs[(i + 1) % n];
            let t = [prev, cur, next];
            let a = tri_area(&t);
            if a < -1e-12 {
                continue; // reflex corner, not an ear
            }
            if a <= 1e-12 {
                // Collinear spike/needle: remove the middle vertex.
                vs.remove(i);
                clipped = true;
                break;
            }
            // Convex corner: it is an ear iff no other vertex lies strictly
            // inside it AND the diagonal is admissible (the latter is what
            // keeps the duplicated vertices of bridged loops honest).
            let blocked = (0..n)
                .filter(|&j| j != (i + n - 1) % n && j != i && j != (i + 1) % n)
                .any(|j| strictly_inside(&t, vs[j]))
                || !diagonal_is_valid(&vs, i);
            if !blocked {
                out.push(t);
                vs.remove(i);
                clipped = true;
                break;
            }
        }
        if !clipped {
            // Fall back: drop the sharpest reflex vertex to make progress.
            // This only triggers on numerically degenerate inputs.
            let n = vs.len();
            let (idx, _) = (0..n)
                .map(|i| {
                    let a = tri_area(&[vs[(i + n - 1) % n], vs[i], vs[(i + 1) % n]]);
                    (i, a.abs())
                })
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("non-empty loop");
            vs.remove(idx);
        }
    }
    if vs.len() == 3 {
        let t = [vs[0], vs[1], vs[2]];
        if tri_area(&t) > 1e-12 {
            out.push(t);
        }
    }
    out
}

/// Subtracts a convex polygon `b` from a convex polygon `a`, returning a
/// convex decomposition of `a \\ b`.
///
/// The classic "peel by half-planes" construction: walk `b`'s edges; the
/// part of `a` outside the current edge (but inside all previously
/// processed edges) is one convex output piece; the rest carries on. Every
/// operation is a convex half-plane clip, so this is numerically tame —
/// which is exactly why the region pipeline subtracts *hole triangles*
/// from *outer triangles* instead of ear-clipping a bridged loop (bridged
/// loops carry duplicated vertices that defeat ear tests).
///
/// # Example
///
/// ```
/// use laacad_geom::{Point, Polygon};
/// use laacad_region::triangulate::convex_difference;
/// let a = Polygon::rectangle(Point::new(0.0, 0.0), Point::new(4.0, 4.0)).unwrap();
/// let b = Polygon::rectangle(Point::new(1.0, 1.0), Point::new(3.0, 3.0)).unwrap();
/// let pieces = convex_difference(&a, &b);
/// let area: f64 = pieces.iter().map(|p| p.area()).sum();
/// assert!((area - 12.0).abs() < 1e-9);
/// ```
pub fn convex_difference(a: &Polygon, b: &Polygon) -> Vec<Polygon> {
    debug_assert!(b.is_convex(), "subtrahend must be convex");
    let mut out = Vec::new();
    let mut remainder = a.clone();
    let bn = b.vertices().len();
    for i in 0..bn {
        let Some(h) = laacad_geom::HalfPlane::left_of(b.vertices()[i], b.vertices()[(i + 1) % bn])
        else {
            continue;
        };
        if let Some(outside) = remainder.clip_halfplane(&h.complement()) {
            out.push(outside);
        }
        match remainder.clip_halfplane(&h) {
            Some(r) => remainder = r,
            None => return out, // nothing of `a` is left on b's side
        }
    }
    // `remainder` is now a ∩ b — removed by the subtraction.
    out
}

/// Triangulates a polygon with holes. Returns CCW triangles whose total
/// area equals `outer.area() − Σ hole.area()`.
///
/// # Example
///
/// ```
/// use laacad_geom::{Point, Polygon};
/// use laacad_region::triangulate::triangulate_with_holes;
/// let outer = Polygon::rectangle(Point::new(0.0, 0.0), Point::new(4.0, 4.0)).unwrap();
/// let hole = Polygon::rectangle(Point::new(1.0, 1.0), Point::new(2.0, 2.0)).unwrap();
/// let tris = triangulate_with_holes(&outer, &[hole]);
/// let area: f64 = tris.iter().map(|t| {
///     0.5 * ((t[1] - t[0]).cross(t[2] - t[0]))
/// }).sum();
/// assert!((area - 15.0).abs() < 1e-9);
/// ```
pub fn triangulate_with_holes(outer: &Polygon, holes: &[Polygon]) -> Vec<Triangle> {
    let mut pieces: Vec<Polygon> = ear_clip(outer.vertices())
        .into_iter()
        .filter_map(|t| Polygon::new(t).ok())
        .collect();
    for hole in holes {
        for ht in ear_clip(hole.vertices()) {
            let Ok(hole_tri) = Polygon::new(ht) else {
                continue;
            };
            pieces = pieces
                .into_iter()
                .flat_map(|p| convex_difference(&p, &hole_tri))
                .collect();
        }
    }
    // Fan-triangulate the convex pieces back into triangles.
    let mut out: Vec<Triangle> = Vec::with_capacity(2 * pieces.len());
    for p in &pieces {
        let vs = p.vertices();
        for k in 1..vs.len() - 1 {
            let t = [vs[0], vs[k], vs[k + 1]];
            if tri_area(&t) > 1e-12 {
                out.push(t);
            }
        }
    }
    out
}

/// Checks that no two edges of the loop properly cross (test helper for
/// gallery shapes; exposed for reuse in other crates' tests).
pub fn is_simple_loop(vertices: &[Point]) -> bool {
    let n = vertices.len();
    if n < 3 {
        return false;
    }
    for i in 0..n {
        let e1 = Segment::new(vertices[i], vertices[(i + 1) % n]);
        for j in i + 1..n {
            // Skip adjacent edges (they share an endpoint by design).
            if j == i || (j + 1) % n == i || (i + 1) % n == j {
                continue;
            }
            let e2 = Segment::new(vertices[j], vertices[(j + 1) % n]);
            if e1.intersect(&e2).is_some() {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total_area(tris: &[Triangle]) -> f64 {
        tris.iter().map(tri_area).sum()
    }

    #[test]
    fn triangle_passes_through() {
        let t = [
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
        ];
        let tris = ear_clip(&t);
        assert_eq!(tris.len(), 1);
        assert!((total_area(&tris) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn square_triangulates_into_two() {
        let sq = Polygon::rectangle(Point::new(0.0, 0.0), Point::new(2.0, 2.0)).unwrap();
        let tris = ear_clip(sq.vertices());
        assert_eq!(tris.len(), 2);
        assert!((total_area(&tris) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn concave_polygon_area_preserved() {
        // L-shape, area 3.
        let l = Polygon::new([
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 1.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 2.0),
            Point::new(0.0, 2.0),
        ])
        .unwrap();
        let tris = ear_clip(l.vertices());
        assert_eq!(tris.len(), 4);
        assert!((total_area(&tris) - 3.0).abs() < 1e-12);
        for t in &tris {
            assert!(tri_area(t) > 0.0, "triangles must be CCW");
        }
    }

    #[test]
    fn star_polygon_area_preserved() {
        // 5-pointed star (highly concave).
        let mut pts = Vec::new();
        for i in 0..10 {
            let th = i as f64 / 10.0 * std::f64::consts::TAU;
            let r = if i % 2 == 0 { 2.0 } else { 0.8 };
            pts.push(Point::new(r * th.cos(), r * th.sin()));
        }
        let star = Polygon::new(pts).unwrap();
        let tris = ear_clip(star.vertices());
        assert!((total_area(&tris) - star.area()).abs() < 1e-9);
        assert_eq!(tris.len(), star.len() - 2);
    }

    #[test]
    fn square_with_center_hole() {
        let outer = Polygon::rectangle(Point::new(0.0, 0.0), Point::new(4.0, 4.0)).unwrap();
        let hole = Polygon::rectangle(Point::new(1.5, 1.5), Point::new(2.5, 2.5)).unwrap();
        let tris = triangulate_with_holes(&outer, std::slice::from_ref(&hole));
        assert!((total_area(&tris) - 15.0).abs() < 1e-9);
        // No triangle's centroid may fall inside the hole.
        for t in &tris {
            let c = Point::new(
                (t[0].x + t[1].x + t[2].x) / 3.0,
                (t[0].y + t[1].y + t[2].y) / 3.0,
            );
            assert!(!hole.contains(c) || hole.closest_boundary_point(c).distance(c) < 1e-9);
        }
    }

    #[test]
    fn two_holes_area_preserved() {
        let outer = Polygon::rectangle(Point::new(0.0, 0.0), Point::new(10.0, 6.0)).unwrap();
        let h1 = Polygon::rectangle(Point::new(1.0, 1.0), Point::new(3.0, 3.0)).unwrap();
        let h2 = Polygon::rectangle(Point::new(6.0, 2.0), Point::new(8.0, 5.0)).unwrap();
        let tris = triangulate_with_holes(&outer, &[h1, h2]);
        assert!((total_area(&tris) - (60.0 - 4.0 - 6.0)).abs() < 1e-9);
    }

    #[test]
    fn bridged_loop_is_usable_even_with_offset_hole() {
        let outer = Polygon::rectangle(Point::new(0.0, 0.0), Point::new(8.0, 8.0)).unwrap();
        // Hole near the right edge (bridge is short).
        let hole = Polygon::new([
            Point::new(6.0, 3.0),
            Point::new(7.0, 3.5),
            Point::new(6.5, 5.0),
        ])
        .unwrap();
        let tris = triangulate_with_holes(&outer, std::slice::from_ref(&hole));
        assert!((total_area(&tris) - (64.0 - hole.area())).abs() < 1e-9);
    }

    #[test]
    fn simple_loop_detector() {
        let sq = [
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
        ];
        assert!(is_simple_loop(&sq));
        let bow = [
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
        ];
        assert!(!is_simple_loop(&bow));
    }
}
