//! The target area `A`: outer boundary minus obstacle holes.

use crate::decompose::convex_decomposition;
use crate::triangulate::{triangulate_with_holes, Triangle};
use laacad_geom::{Aabb, Point, Polygon};

/// A target area: one simple outer polygon minus disjoint polygonal holes
/// (the paper's obstacles, Fig. 8 — "holes represent obstacles that mobile
/// sensor nodes cannot move upon").
///
/// The region pre-computes its triangulation and a Hertel–Mehlhorn convex
/// decomposition at construction; both are shared by every node every
/// round, so the one-time cost is irrelevant.
///
/// # Example
///
/// ```
/// use laacad_region::Region;
/// let a = Region::square(1.0).unwrap();
/// assert!((a.area() - 1.0).abs() < 1e-12);
/// assert_eq!(a.convex_pieces().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Region {
    outer: Polygon,
    holes: Vec<Polygon>,
    triangles: Vec<Triangle>,
    pieces: Vec<Polygon>,
    area: f64,
}

/// Errors raised while assembling a [`Region`].
#[derive(Debug, Clone, PartialEq)]
pub enum RegionError {
    /// A hole is not strictly contained in the outer polygon.
    HoleOutsideOuter,
    /// Two holes overlap.
    OverlappingHoles,
    /// The holes consume (numerically) the entire outer area.
    EmptyInterior,
}

impl std::fmt::Display for RegionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RegionError::HoleOutsideOuter => "hole extends outside the outer boundary",
            RegionError::OverlappingHoles => "holes overlap each other",
            RegionError::EmptyInterior => "holes consume the entire region",
        };
        f.write_str(s)
    }
}

impl std::error::Error for RegionError {}

impl Region {
    /// Region bounded by a single polygon, no holes.
    pub fn new(outer: Polygon) -> Self {
        Self::with_holes(outer, Vec::new()).expect("hole-free regions are always valid")
    }

    /// Axis-aligned square `[0, side] × [0, side]`.
    ///
    /// # Errors
    ///
    /// Fails when `side` is not strictly positive (propagated from the
    /// polygon constructor).
    pub fn square(side: f64) -> Result<Self, laacad_geom::polygon::PolygonError> {
        Ok(Region::new(Polygon::rectangle(
            Point::new(0.0, 0.0),
            Point::new(side, side),
        )?))
    }

    /// Axis-aligned rectangle `[0, w] × [0, h]`.
    ///
    /// # Errors
    ///
    /// Fails when either extent is not strictly positive.
    pub fn rect(w: f64, h: f64) -> Result<Self, laacad_geom::polygon::PolygonError> {
        Ok(Region::new(Polygon::rectangle(
            Point::new(0.0, 0.0),
            Point::new(w, h),
        )?))
    }

    /// Region with obstacle holes.
    ///
    /// # Errors
    ///
    /// * [`RegionError::HoleOutsideOuter`] — a hole vertex leaves the outer
    ///   polygon;
    /// * [`RegionError::OverlappingHoles`] — two holes share interior
    ///   (vertex-in-other test);
    /// * [`RegionError::EmptyInterior`] — nothing is left to cover.
    pub fn with_holes(outer: Polygon, holes: Vec<Polygon>) -> Result<Self, RegionError> {
        for h in &holes {
            if !h.vertices().iter().all(|&v| outer.contains(v)) {
                return Err(RegionError::HoleOutsideOuter);
            }
        }
        for i in 0..holes.len() {
            for j in i + 1..holes.len() {
                let hi = &holes[i];
                let hj = &holes[j];
                let cross_ij = hi
                    .vertices()
                    .iter()
                    .any(|&v| hj.contains(v) && hj.closest_boundary_point(v).distance(v) > 1e-9);
                let cross_ji = hj
                    .vertices()
                    .iter()
                    .any(|&v| hi.contains(v) && hi.closest_boundary_point(v).distance(v) > 1e-9);
                if cross_ij || cross_ji {
                    return Err(RegionError::OverlappingHoles);
                }
            }
        }
        let area = outer.area() - holes.iter().map(|h| h.area()).sum::<f64>();
        if area <= 1e-12 {
            return Err(RegionError::EmptyInterior);
        }
        let triangles = triangulate_with_holes(&outer, &holes);
        let pieces = convex_decomposition(&triangles);
        Ok(Region {
            outer,
            holes,
            triangles,
            pieces,
            area,
        })
    }

    /// The outer boundary polygon.
    #[inline]
    pub fn outer(&self) -> &Polygon {
        &self.outer
    }

    /// The obstacle holes.
    #[inline]
    pub fn holes(&self) -> &[Polygon] {
        &self.holes
    }

    /// Free area (`outer − holes`).
    #[inline]
    pub fn area(&self) -> f64 {
        self.area
    }

    /// Bounding box of the outer boundary.
    pub fn bounding_box(&self) -> Aabb {
        self.outer.bounding_box()
    }

    /// Diameter proxy: diagonal of the bounding box — the natural upper
    /// bound for Algorithm 2's searching-ring radius.
    pub fn diameter_bound(&self) -> f64 {
        self.bounding_box().diagonal()
    }

    /// The cached triangulation of the free area.
    #[inline]
    pub fn triangles(&self) -> &[Triangle] {
        &self.triangles
    }

    /// The cached convex decomposition of the free area.
    ///
    /// Dominating-region computations intersect candidate cells with these
    /// pieces so that every polygon Boolean in the system stays
    /// convex–convex.
    #[inline]
    pub fn convex_pieces(&self) -> &[Polygon] {
        &self.pieces
    }

    /// Closed containment: inside the outer polygon and not strictly
    /// inside any hole (obstacle boundaries count as free — a node may
    /// stand on an obstacle's edge).
    pub fn contains(&self, p: Point) -> bool {
        if !self.outer.contains(p) {
            return false;
        }
        !self
            .holes
            .iter()
            .any(|h| h.contains(p) && h.closest_boundary_point(p).distance(p) > 1e-9)
    }

    /// Projects `p` to the nearest point of the free region.
    ///
    /// Needed when a motion target (a Chebyshev center of a non-convex
    /// dominating region) lands inside an obstacle or outside the outer
    /// boundary — the paper does not specify this case; we project
    /// (DESIGN.md §3).
    pub fn project(&self, p: Point) -> Point {
        if self.contains(p) {
            return p;
        }
        // Candidate projections: outer boundary and each hole boundary.
        let mut best = self.outer.closest_boundary_point(p);
        let mut best_d = best.distance_sq(p);
        for h in &self.holes {
            let q = h.closest_boundary_point(p);
            let d = q.distance_sq(p);
            if d < best_d && self.contains(q) {
                best_d = d;
                best = q;
            }
        }
        // Nudge inward if numerical noise leaves the point epsilon-outside.
        if self.contains(best) {
            best
        } else {
            let c = self.pieces[0].centroid();
            best.lerp(c, 1e-9)
        }
    }

    /// Deterministic grid of sample points inside the region, roughly
    /// `target` many (used by coverage verification).
    pub fn grid_points(&self, target: usize) -> Vec<Point> {
        let bb = self.bounding_box();
        let aspect = bb.width() / bb.height();
        let ny = ((target as f64 / aspect).sqrt()).ceil().max(1.0) as usize;
        let nx = ((target as f64 / ny as f64).ceil()).max(1.0) as usize;
        let mut out = Vec::with_capacity(target);
        for iy in 0..ny {
            for ix in 0..nx {
                let p = Point::new(
                    bb.min().x + (ix as f64 + 0.5) / nx as f64 * bb.width(),
                    bb.min().y + (iy as f64 + 0.5) / ny as f64 * bb.height(),
                );
                if self.contains(p) {
                    out.push(p);
                }
            }
        }
        out
    }
}

impl std::fmt::Display for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "region[area {:.4}, {} holes, {} convex pieces]",
            self.area,
            self.holes.len(),
            self.pieces.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_region_basics() {
        let r = Region::square(2.0).unwrap();
        assert!((r.area() - 4.0).abs() < 1e-12);
        assert!(r.contains(Point::new(1.0, 1.0)));
        assert!(r.contains(Point::new(0.0, 0.0))); // boundary
        assert!(!r.contains(Point::new(2.1, 1.0)));
        assert_eq!(r.convex_pieces().len(), 1);
        assert!((r.diameter_bound() - 8.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn holed_region_containment_and_area() {
        let outer = Polygon::rectangle(Point::new(0.0, 0.0), Point::new(10.0, 10.0)).unwrap();
        let hole = Polygon::rectangle(Point::new(4.0, 4.0), Point::new(6.0, 6.0)).unwrap();
        let r = Region::with_holes(outer, vec![hole]).unwrap();
        assert!((r.area() - 96.0).abs() < 1e-9);
        assert!(!r.contains(Point::new(5.0, 5.0)));
        assert!(r.contains(Point::new(4.0, 5.0))); // hole boundary is free
        assert!(r.contains(Point::new(1.0, 1.0)));
        let pieces_area: f64 = r.convex_pieces().iter().map(|p| p.area()).sum();
        assert!((pieces_area - 96.0).abs() < 1e-9);
    }

    #[test]
    fn validation_errors() {
        let outer = Polygon::rectangle(Point::new(0.0, 0.0), Point::new(4.0, 4.0)).unwrap();
        let escaping = Polygon::rectangle(Point::new(3.0, 3.0), Point::new(5.0, 5.0)).unwrap();
        assert_eq!(
            Region::with_holes(outer.clone(), vec![escaping]).unwrap_err(),
            RegionError::HoleOutsideOuter
        );
        let h1 = Polygon::rectangle(Point::new(1.0, 1.0), Point::new(2.5, 2.5)).unwrap();
        let h2 = Polygon::rectangle(Point::new(2.0, 2.0), Point::new(3.0, 3.0)).unwrap();
        assert_eq!(
            Region::with_holes(outer, vec![h1, h2]).unwrap_err(),
            RegionError::OverlappingHoles
        );
    }

    #[test]
    fn projection_pulls_points_into_free_space() {
        let outer = Polygon::rectangle(Point::new(0.0, 0.0), Point::new(10.0, 10.0)).unwrap();
        let hole = Polygon::rectangle(Point::new(4.0, 4.0), Point::new(6.0, 6.0)).unwrap();
        let r = Region::with_holes(outer, vec![hole]).unwrap();
        // From inside an obstacle.
        let q = r.project(Point::new(5.0, 4.9));
        assert!(r.contains(q));
        assert!(q.distance(Point::new(5.0, 4.0)) < 1e-6);
        // From outside the outer boundary.
        let q2 = r.project(Point::new(15.0, 5.0));
        assert!(r.contains(q2));
        assert!(q2.approx_eq(Point::new(10.0, 5.0), 1e-9));
        // Interior points are fixed points of projection.
        let inside = Point::new(2.0, 2.0);
        assert_eq!(r.project(inside), inside);
    }

    #[test]
    fn grid_points_fall_inside_and_scale() {
        let outer = Polygon::rectangle(Point::new(0.0, 0.0), Point::new(10.0, 10.0)).unwrap();
        let hole = Polygon::rectangle(Point::new(4.0, 4.0), Point::new(6.0, 6.0)).unwrap();
        let r = Region::with_holes(outer, vec![hole]).unwrap();
        let g = r.grid_points(1000);
        assert!(g.len() > 800 && g.len() <= 1100, "got {}", g.len());
        assert!(g.iter().all(|&p| r.contains(p)));
        // Fraction of box points kept ≈ free-area fraction.
        let frac = g.len() as f64 / 1024.0;
        assert!((frac - 0.96).abs() < 0.05);
    }

    #[test]
    fn rect_region() {
        let r = Region::rect(4.0, 2.0).unwrap();
        assert!((r.area() - 8.0).abs() < 1e-12);
        assert!(r.contains(Point::new(3.9, 1.9)));
    }
}
