//! Ready-made target areas used throughout the experiments.
//!
//! The paper's evaluation uses a unit square (Figs. 5–7, Tables I–II) and
//! two irregular scenarios (Fig. 8): an arbitrarily shaped concave area
//! ("deployment I") and an area containing obstacles ("deployment II").
//! Exact outlines are not published; these shapes match the described
//! character (concave outline; internal holes) and are fixed here so every
//! experiment and test sees identical geometry.

use crate::Region;
use laacad_geom::{Point, Polygon};

/// The 1 × 1 unit square (kilometres in Figs. 5–7).
pub fn unit_square() -> Region {
    Region::square(1.0).expect("unit square is valid")
}

/// Square of the given side.
///
/// # Panics
///
/// Panics for non-positive side lengths.
pub fn square(side: f64) -> Region {
    Region::square(side).expect("square side must be positive")
}

/// An L-shaped area (concave) with unit "arm" thickness, total area 3.
pub fn l_shape() -> Region {
    Region::new(
        Polygon::new([
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 1.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 2.0),
            Point::new(0.0, 2.0),
        ])
        .expect("L-shape is a valid polygon"),
    )
}

/// A cross/plus-shaped area, the union of two 3 × 1 bars.
pub fn cross_shape() -> Region {
    Region::new(
        Polygon::new([
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 1.0),
            Point::new(3.0, 1.0),
            Point::new(3.0, 2.0),
            Point::new(2.0, 2.0),
            Point::new(2.0, 3.0),
            Point::new(1.0, 3.0),
            Point::new(1.0, 2.0),
            Point::new(0.0, 2.0),
            Point::new(0.0, 1.0),
            Point::new(1.0, 1.0),
        ])
        .expect("cross is a valid polygon"),
    )
}

/// Fig. 8 "deployment I": an arbitrarily shaped concave coastline-like
/// area (no holes), area ≈ 0.66 km².
pub fn irregular_coast() -> Region {
    Region::new(
        Polygon::new([
            Point::new(0.00, 0.10),
            Point::new(0.35, 0.00),
            Point::new(0.75, 0.05),
            Point::new(1.00, 0.30),
            Point::new(0.95, 0.65),
            Point::new(0.70, 0.60),
            Point::new(0.55, 0.80),
            Point::new(0.65, 1.00),
            Point::new(0.30, 0.95),
            Point::new(0.10, 0.70),
            Point::new(0.20, 0.45),
            Point::new(0.05, 0.35),
        ])
        .expect("coast outline is a valid polygon"),
    )
}

/// Fig. 8 "deployment II": a square kilometre with two obstacle "lakes"
/// that nodes can neither enter nor need to cover.
pub fn square_with_lakes() -> Region {
    let outer =
        Polygon::rectangle(Point::new(0.0, 0.0), Point::new(1.0, 1.0)).expect("outer square");
    let lake1 = Polygon::regular(Point::new(0.30, 0.62), 0.13, 8, 0.3).expect("octagon lake");
    let lake2 = Polygon::new([
        Point::new(0.60, 0.18),
        Point::new(0.82, 0.22),
        Point::new(0.88, 0.38),
        Point::new(0.72, 0.46),
        Point::new(0.58, 0.36),
    ])
    .expect("pentagon lake");
    Region::with_holes(outer, vec![lake1, lake2]).expect("lakes sit inside the square")
}

/// A long, thin corridor (aspect 8 : 1) — stresses boundary handling and
/// models border-surveillance deployments.
pub fn corridor() -> Region {
    Region::rect(8.0, 1.0).expect("corridor is valid")
}

/// Forest-watch scenario for the examples: a concave forest outline with a
/// lake obstacle.
pub fn forest_with_lake() -> Region {
    let outer = Polygon::new([
        Point::new(0.00, 0.20),
        Point::new(0.30, 0.00),
        Point::new(0.80, 0.05),
        Point::new(1.05, 0.35),
        Point::new(0.95, 0.75),
        Point::new(0.60, 1.00),
        Point::new(0.25, 0.90),
        Point::new(0.05, 0.60),
    ])
    .expect("forest outline");
    let lake = Polygon::regular(Point::new(0.55, 0.45), 0.12, 10, 0.0).expect("lake");
    Region::with_holes(outer, vec![lake]).expect("lake inside forest")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_gallery_regions_are_valid_and_decompose() {
        for (name, r) in [
            ("unit_square", unit_square()),
            ("l_shape", l_shape()),
            ("cross", cross_shape()),
            ("coast", irregular_coast()),
            ("lakes", square_with_lakes()),
            ("corridor", corridor()),
            ("forest", forest_with_lake()),
        ] {
            assert!(r.area() > 0.0, "{name} has positive area");
            let pieces_area: f64 = r.convex_pieces().iter().map(|p| p.area()).sum();
            assert!(
                (pieces_area - r.area()).abs() < 1e-6 * (1.0 + r.area()),
                "{name}: decomposition area {pieces_area} vs region {}",
                r.area()
            );
            assert!(r.convex_pieces().iter().all(|p| p.is_convex()), "{name}");
        }
    }

    #[test]
    fn lakes_are_excluded() {
        let r = square_with_lakes();
        assert!(!r.contains(Point::new(0.30, 0.62)));
        assert!(!r.contains(Point::new(0.72, 0.32)));
        assert!(r.contains(Point::new(0.1, 0.1)));
        assert!(r.area() < 1.0);
    }

    #[test]
    fn grid_points_respect_holes() {
        let r = square_with_lakes();
        for p in r.grid_points(2000) {
            assert!(r.contains(p));
        }
    }

    #[test]
    fn coast_is_concave() {
        let r = irregular_coast();
        assert!(!r.outer().is_convex());
        assert!(r.convex_pieces().len() > 1);
    }
}
