//! # laacad-region — target areas `A`, possibly irregular, possibly holed
//!
//! LAACAD deploys sensors over a 2-D target area `A`. The paper evaluates
//! both a plain square (Figs. 5–7, Tables I–II) and arbitrarily shaped
//! areas containing obstacles that nodes can neither enter nor need to
//! cover (Fig. 8). This crate models such areas:
//!
//! * [`Region`]: a simple outer polygon minus a set of polygonal holes,
//!   with containment, area, nearest-free-point projection and sampling;
//! * [`triangulate`]: ear-clipping triangulation with hole bridging;
//! * [`decompose`]: Hertel–Mehlhorn convex decomposition — the Voronoi
//!   machinery clips dominating regions against these convex pieces so
//!   that *every* polygon Boolean in the system is convex–convex;
//! * [`arcs`]: circle∩region angular clipping (the constrained ring check
//!   of Fig. 3 sweeps only the sub-arcs of the searching circle that lie
//!   inside `A`);
//! * [`gallery`]: ready-made areas used by the experiments, including the
//!   Fig. 8 irregular/obstacle scenarios.
//!
//! # Example
//!
//! ```
//! use laacad_region::Region;
//! use laacad_geom::{Point, Polygon};
//!
//! let outer = Polygon::rectangle(Point::new(0.0, 0.0), Point::new(10.0, 10.0))?;
//! let hole = Polygon::rectangle(Point::new(4.0, 4.0), Point::new(6.0, 6.0))?;
//! let region = Region::with_holes(outer, vec![hole])?;
//! assert!((region.area() - 96.0).abs() < 1e-9);
//! assert!(region.contains(Point::new(1.0, 1.0)));
//! assert!(!region.contains(Point::new(5.0, 5.0))); // inside the obstacle
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arcs;
pub mod decompose;
pub mod gallery;
pub mod region;
pub mod sampling;
pub mod triangulate;

pub use region::{Region, RegionError};
