//! Random sampling of points inside a region.
//!
//! Uniform sampling picks a triangle of the cached triangulation with
//! probability proportional to its area, then samples uniformly inside it
//! — exact, no rejection loop over the bounding box.

use crate::Region;
use laacad_geom::Point;

/// Deterministic, dependency-free RNG (SplitMix64) so that *library* code
/// does not force a `rand` dependency on downstream users; experiment
/// crates use `rand` for their own workloads.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The current internal state — checkpoint serialization. Feeding it
    /// back through [`SplitMix64::new`] resumes the stream exactly where
    /// it left off.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }
}

/// Samples `n` points uniformly from the free area of `region`.
///
/// # Example
///
/// ```
/// use laacad_region::{sampling::sample_uniform, Region};
/// let r = Region::square(1.0).unwrap();
/// let pts = sample_uniform(&r, 100, 42);
/// assert_eq!(pts.len(), 100);
/// assert!(pts.iter().all(|&p| r.contains(p)));
/// ```
pub fn sample_uniform(region: &Region, n: usize, seed: u64) -> Vec<Point> {
    let mut rng = SplitMix64::new(seed);
    let tris = region.triangles();
    assert!(!tris.is_empty(), "region has an empty triangulation");
    // Cumulative areas.
    let mut cum: Vec<f64> = Vec::with_capacity(tris.len());
    let mut acc = 0.0;
    for t in tris {
        acc += 0.5 * ((t[1] - t[0]).cross(t[2] - t[0])).abs();
        cum.push(acc);
    }
    let total = acc;
    (0..n)
        .map(|_| {
            let target = rng.next_f64() * total;
            let idx = cum.partition_point(|&c| c < target).min(tris.len() - 1);
            let t = &tris[idx];
            // Uniform point in a triangle via reflected barycentric trick.
            let mut u = rng.next_f64();
            let mut v = rng.next_f64();
            if u + v > 1.0 {
                u = 1.0 - u;
                v = 1.0 - v;
            }
            t[0] + (t[1] - t[0]) * u + (t[2] - t[0]) * v
        })
        .collect()
}

/// Samples `n` points from a disk of radius `radius` around `center`,
/// clipped to the region by projection — the paper's Fig. 5 initial
/// deployment ("initially deploy 100 sensor nodes at the bottom-left
/// corner") uses this with a small radius.
pub fn sample_clustered(
    region: &Region,
    n: usize,
    center: Point,
    radius: f64,
    seed: u64,
) -> Vec<Point> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| {
            let th = rng.range(0.0, std::f64::consts::TAU);
            let r = radius * rng.next_f64().sqrt();
            let p = center + laacad_geom::Vector::from_angle(th) * r;
            region.project(p)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use laacad_geom::Polygon;

    #[test]
    fn uniform_points_inside_region() {
        let outer = Polygon::rectangle(Point::new(0.0, 0.0), Point::new(10.0, 10.0)).unwrap();
        let hole = Polygon::rectangle(Point::new(4.0, 4.0), Point::new(6.0, 6.0)).unwrap();
        let r = Region::with_holes(outer, vec![hole]).unwrap();
        let pts = sample_uniform(&r, 2000, 7);
        assert_eq!(pts.len(), 2000);
        assert!(pts.iter().all(|&p| r.contains(p)));
        // No sample inside the (open) hole.
        assert!(!pts
            .iter()
            .any(|p| p.x > 4.1 && p.x < 5.9 && p.y > 4.1 && p.y < 5.9));
    }

    #[test]
    fn uniform_sampling_is_roughly_uniform() {
        let r = Region::square(1.0).unwrap();
        let pts = sample_uniform(&r, 4000, 99);
        // Quadrant counts should be near 1000 each.
        let mut counts = [0usize; 4];
        for p in &pts {
            let q = (p.x >= 0.5) as usize + 2 * (p.y >= 0.5) as usize;
            counts[q] += 1;
        }
        for c in counts {
            assert!((c as i64 - 1000).abs() < 150, "counts {counts:?}");
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let r = Region::square(5.0).unwrap();
        let a = sample_uniform(&r, 50, 1234);
        let b = sample_uniform(&r, 50, 1234);
        assert_eq!(a, b);
        let c = sample_uniform(&r, 50, 4321);
        assert_ne!(a, c);
    }

    #[test]
    fn clustered_sampling_respects_region() {
        let r = Region::square(10.0).unwrap();
        let pts = sample_clustered(&r, 200, Point::new(0.5, 0.5), 2.0, 5);
        assert_eq!(pts.len(), 200);
        assert!(pts.iter().all(|&p| r.contains(p)));
        // Most points stay near the corner.
        let near = pts
            .iter()
            .filter(|p| p.distance(Point::new(0.5, 0.5)) <= 2.0 + 1e-9)
            .count();
        assert!(near == 200, "projection may move only outside-region draws");
    }

    #[test]
    fn splitmix_is_stable() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(1);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let x = SplitMix64::new(2).next_f64();
        assert!((0.0..1.0).contains(&x));
    }
}
