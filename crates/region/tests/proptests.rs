//! Property-based tests for regions: decomposition is area-preserving and
//! point-location-consistent, sampling stays inside, arc clipping matches
//! brute-force membership.

use laacad_geom::{Circle, Point, Polygon};
use laacad_region::arcs::arcs_inside_region;
use laacad_region::sampling::sample_uniform;
use laacad_region::triangulate::convex_difference;
use laacad_region::Region;
use proptest::prelude::*;

/// Strategy: a random star-shaped simple polygon around the origin
/// (radii per angle step), guaranteed simple by construction.
fn star_polygon() -> impl Strategy<Value = Polygon> {
    prop::collection::vec(0.5f64..3.0, 5..14).prop_map(|radii| {
        let n = radii.len();
        let pts: Vec<Point> = radii
            .iter()
            .enumerate()
            .map(|(i, &r)| {
                let th = i as f64 / n as f64 * std::f64::consts::TAU;
                Point::new(5.0 + r * th.cos(), 5.0 + r * th.sin())
            })
            .collect();
        Polygon::new(pts).expect("star polygons are valid")
    })
}

/// A small convex hole strictly inside the star region's inner radius.
fn small_hole() -> impl Strategy<Value = Polygon> {
    (3usize..7, 0.05f64..0.35, 0.0f64..std::f64::consts::TAU).prop_map(|(n, r, phase)| {
        Polygon::regular(Point::new(5.0, 5.0), r, n, phase).expect("hole polygon")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn decomposition_preserves_area(outer in star_polygon()) {
        let region = Region::new(outer.clone());
        let sum: f64 = region.convex_pieces().iter().map(|p| p.area()).sum();
        prop_assert!((sum - outer.area()).abs() <= 1e-6 * (1.0 + outer.area()));
    }

    #[test]
    fn decomposition_with_hole_preserves_area(outer in star_polygon(), hole in small_hole()) {
        let region = Region::with_holes(outer.clone(), vec![hole.clone()]).unwrap();
        let expect = outer.area() - hole.area();
        let sum: f64 = region.convex_pieces().iter().map(|p| p.area()).sum();
        prop_assert!((sum - expect).abs() <= 1e-6 * (1.0 + expect), "sum {sum} expect {expect}");
        prop_assert!(region.convex_pieces().iter().all(|p| p.is_convex()));
    }

    #[test]
    fn point_location_consistent(outer in star_polygon(), hole in small_hole(),
                                 x in 1.0f64..9.0, y in 1.0f64..9.0) {
        let region = Region::with_holes(outer, vec![hole]).unwrap();
        let p = Point::new(x, y);
        let in_region = region.contains(p);
        let in_pieces = region.convex_pieces().iter().any(|piece| piece.contains(p));
        // Allow disagreement only within tolerance of a boundary.
        let near_boundary = {
            let ob = region.outer().closest_boundary_point(p).distance(p);
            let hb = region
                .holes()
                .iter()
                .map(|h| h.closest_boundary_point(p).distance(p))
                .fold(f64::INFINITY, f64::min);
            ob.min(hb) < 1e-6
        };
        prop_assert!(in_region == in_pieces || near_boundary,
            "contains {in_region} pieces {in_pieces} at {p}");
    }

    #[test]
    fn samples_always_inside(outer in star_polygon(), seed in 0u64..1000) {
        let region = Region::new(outer);
        for p in sample_uniform(&region, 64, seed) {
            prop_assert!(region.contains(p));
        }
    }

    #[test]
    fn projection_lands_inside(outer in star_polygon(), x in -5.0f64..15.0, y in -5.0f64..15.0) {
        let region = Region::new(outer);
        let q = region.project(Point::new(x, y));
        prop_assert!(region.contains(q), "projected {q} escapes");
    }

    #[test]
    fn convex_difference_area_identity(
        ax in 0.0f64..2.0, ay in 0.0f64..2.0,
        bw in 0.5f64..3.0, bh in 0.5f64..3.0,
    ) {
        // a = fixed square, b = random rectangle; |a \ b| = |a| − |a ∩ b|.
        let a = Polygon::rectangle(Point::new(0.0, 0.0), Point::new(4.0, 4.0)).unwrap();
        let b = Polygon::rectangle(Point::new(ax, ay), Point::new(ax + bw, ay + bh)).unwrap();
        let inter = a.clip_convex(&b).map(|p| p.area()).unwrap_or(0.0);
        let diff: f64 = convex_difference(&a, &b).iter().map(|p| p.area()).sum();
        prop_assert!((diff - (a.area() - inter)).abs() < 1e-6);
    }

    #[test]
    fn arc_clipping_matches_membership(
        outer in star_polygon(),
        cx in 2.0f64..8.0, cy in 2.0f64..8.0, r in 0.2f64..4.0,
    ) {
        let region = Region::new(outer);
        let c = Circle::new(Point::new(cx, cy), r);
        let arcs = arcs_inside_region(&c, &region);
        for i in 0..360 {
            let th = (i as f64 + 0.5) / 360.0 * std::f64::consts::TAU;
            let p = c.point_at(th);
            // Skip points too close to the region boundary (tolerance zone).
            let d = region.outer().closest_boundary_point(p).distance(p);
            if d < 1e-6 {
                continue;
            }
            let inside = region.contains(p);
            let in_arcs = arcs.iter().any(|a| a.contains(th));
            prop_assert_eq!(inside, in_arcs, "θ={} p={}", th, p);
        }
    }
}
