//! The host scheduler at fleet scale: 64 concurrent sessions, bounded
//! queues under both backpressure policies, mid-run retirements — and
//! the headline guarantee, **byte-for-byte replay** of the whole run
//! from the command log alone.

use laacad::{LaacadConfig, NetworkEvent, Session};
use laacad_geom::Point;
use laacad_region::sampling::sample_uniform;
use laacad_region::Region;
use laacad_serve::{
    Command, HostConfig, QueuePolicy, Response, SessionHost, SessionId, SubmitError,
};
use laacad_wsn::NodeId;

fn session(n: usize, k: usize, seed: u64) -> Session {
    let region = Region::square(1.0).unwrap();
    let config = LaacadConfig::builder(k)
        .transmission_range(LaacadConfig::recommended_gamma(1.0, n, k))
        .alpha(0.6)
        .epsilon(1e-3)
        .max_rounds(200)
        .seed(seed)
        .build()
        .unwrap();
    Session::builder(config)
        .region(region.clone())
        .positions(sample_uniform(&region, n, seed))
        .build()
        .unwrap()
}

/// A tiny deterministic stream (SplitMix64) to vary the command mix
/// without any time- or thread-dependent input.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

fn command(mix: &mut Mix) -> Command {
    match mix.next() % 8 {
        0 => Command::Displace(vec![(
            NodeId(0),
            Point::new(
                (mix.next() % 1000) as f64 / 1000.0,
                (mix.next() % 1000) as f64 / 1000.0,
            ),
        )]),
        1 => Command::QueryCoverage { samples: 200 },
        2 => Command::ApplyEvent(NetworkEvent::InsertNodes(vec![Point::new(
            (mix.next() % 1000) as f64 / 1000.0,
            (mix.next() % 1000) as f64 / 1000.0,
        )])),
        3 => Command::Snapshot,
        _ => Command::Step,
    }
}

#[test]
fn sixty_four_sessions_replay_byte_for_byte() {
    let config = HostConfig {
        queue_capacity: 4,
        policy: QueuePolicy::ShedOldest,
        tick_budget: 2,
        threads: 0,
    };
    let mut host = SessionHost::new(config);
    let ids: Vec<SessionId> = (0..64)
        .map(|i| host.admit(session(10 + i % 5, 1 + i % 3, 9_000 + i as u64)))
        .collect();
    assert_eq!(host.sessions_live(), 64);

    // A varied, overloaded run: bursts deeper than the queue bound (so
    // ShedOldest fires), interleaved ticks, and mid-run retirements.
    let mut mix = Mix(42);
    for round in 0..12u64 {
        for &id in &ids {
            if host.session(id).is_none() {
                continue;
            }
            let burst = 1 + (mix.next() % 6) as usize;
            for _ in 0..burst {
                host.submit(id, command(&mut mix)).unwrap();
            }
        }
        host.tick();
        if round == 5 {
            host.retire(ids[7]).unwrap();
            host.retire(ids[33]).unwrap();
        }
    }
    // Drain what's left so the final states depend on every submission.
    while host.stats().executed < host.stats().accepted - host.stats().shed {
        host.tick();
    }
    let stats = host.stats();
    assert!(stats.shed > 0, "the burst load never overflowed a queue");
    assert_eq!(stats.admitted, 64);
    assert_eq!(stats.retired, 2);
    assert_eq!(stats.rejected, 0);

    let replayed = SessionHost::replay(host.log()).expect("log replays");
    assert_eq!(replayed.stats(), stats);
    assert_eq!(replayed.log(), host.log(), "replay log must equal input");
    for &id in &ids {
        match (host.session(id), replayed.session(id)) {
            (Some(a), Some(b)) => {
                assert_eq!(a.snapshot(), b.snapshot(), "{id} diverged under replay")
            }
            (None, None) => {}
            _ => panic!("{id} live-ness diverged under replay"),
        }
    }
}

#[test]
fn reject_policy_surfaces_backpressure_and_still_replays() {
    let config = HostConfig {
        queue_capacity: 2,
        policy: QueuePolicy::Reject,
        tick_budget: 0,
        threads: 1,
    };
    let mut host = SessionHost::new(config);
    let id = host.admit(session(12, 1, 7));
    host.submit(id, Command::Step).unwrap();
    host.submit(id, Command::Step).unwrap();
    assert_eq!(
        host.submit(id, Command::Step),
        Err(SubmitError::QueueFull),
        "a full queue under Reject must push back"
    );
    assert_eq!(host.queue_depth(id), Some(2));
    let results = host.tick();
    assert_eq!(results.len(), 1);
    assert_eq!(results[0].1.len(), 2, "tick_budget 0 drains the queue");
    assert!(matches!(results[0].1[0], Response::Stepped(_)));
    assert_eq!(host.stats().rejected, 1);

    // Rejected commands never entered the run, so the log replays
    // without them — to the same session bytes.
    let replayed = SessionHost::replay(host.log()).expect("log replays");
    assert_eq!(
        host.session(id).unwrap().snapshot(),
        replayed.session(id).unwrap().snapshot()
    );
    assert_eq!(replayed.stats().rejected, 0);
}
