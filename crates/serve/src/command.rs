//! The host's command model: what clients ask of a hosted session, what
//! they get back, and the append-only log a host run replays from.

use laacad::{EventOutcome, NetworkEvent, RoundDelta};
use laacad_geom::Point;
use laacad_wsn::NodeId;

use crate::host::HostConfig;

/// Handle to one hosted session — the dense slot index a
/// [`crate::SessionHost`] assigned at admission. Ids are never reused
/// within a host's lifetime (retired slots stay empty), so a log entry
/// naming an id is unambiguous.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(pub usize);

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "session#{}", self.0)
    }
}

/// One client request against a hosted session.
///
/// Commands queue per session and execute in submission order during
/// [`crate::SessionHost::tick`]; each maps to exactly one [`Response`].
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run one engine round ([`laacad::Session::step`]).
    Step,
    /// Externally displace nodes ([`laacad::Session::displace_nodes`]) —
    /// the disturbance-stream ingestion path.
    Displace(Vec<(NodeId, Point)>),
    /// Apply a dynamic event ([`laacad::Session::apply_event`]).
    ApplyEvent(NetworkEvent),
    /// Evaluate k-coverage over roughly `samples` grid points.
    QueryCoverage {
        /// Target sample count for the coverage grid.
        samples: usize,
    },
    /// Serialize the session ([`laacad::Session::snapshot`]).
    Snapshot,
}

/// The answer to one [`Command`], in queue order.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// [`Command::Step`] — the round's change set.
    Stepped(RoundDelta),
    /// [`Command::Displace`] — nodes whose position actually changed.
    Displaced(usize),
    /// [`Command::ApplyEvent`] — nodes removed/inserted.
    EventApplied(EventOutcome),
    /// [`Command::QueryCoverage`] — the coverage verdict.
    Coverage(CoverageAnswer),
    /// [`Command::Snapshot`] — a `laacad-snapshot/1` buffer.
    Snapshot(Vec<u8>),
    /// The session rejected the command (validation failure); the
    /// session itself is untouched, per the engine's atomic-rejection
    /// contract.
    Failed(String),
}

/// Coverage metrics answering a [`Command::QueryCoverage`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoverageAnswer {
    /// Coverage degree the query evaluated against (the session's `k`).
    pub k: usize,
    /// Grid points actually sampled.
    pub samples: usize,
    /// Fraction of sampled points covered by ≥ k sensors.
    pub covered_fraction: f64,
    /// Minimum observed coverage degree.
    pub min_degree: usize,
    /// Mean observed coverage degree.
    pub mean_degree: f64,
}

/// One entry of a host's append-only command log.
///
/// The log is self-contained: admissions carry the admitted session's
/// snapshot bytes, so [`crate::SessionHost::replay`] reconstructs the
/// whole run from the log alone — no out-of-band initial state.
/// Rejected submissions never enter the log (they never entered a
/// queue); sheds are *not* logged either, because they are a
/// deterministic function of the logged submissions and ticks.
#[derive(Debug, Clone, PartialEq)]
pub enum LogEntry {
    /// A session was admitted with this snapshot as its initial state.
    Admit {
        /// `laacad-snapshot/1` bytes of the session at admission.
        snapshot: Vec<u8>,
    },
    /// A command was accepted into a session's queue.
    Submit {
        /// The target session.
        session: SessionId,
        /// The accepted command.
        command: Command,
    },
    /// A session was retired (removed from scheduling).
    Retire {
        /// The retired session.
        session: SessionId,
    },
    /// One scheduling tick ran.
    Tick,
}

/// A complete, replayable record of a host run: the host configuration
/// plus every logged entry in order.
#[derive(Debug, Clone, PartialEq)]
pub struct CommandLog {
    /// The configuration the host ran under (queue bounds and budgets
    /// shape which commands executed when, so replay needs them).
    pub config: HostConfig,
    /// Entries in the order they happened.
    pub entries: Vec<LogEntry>,
}
