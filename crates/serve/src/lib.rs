//! # laacad-serve — coverage-as-a-service session host
//!
//! The hosting layer that turns the LAACAD round engine into a live
//! service: long-lived [`laacad::Session`]s multiplexed behind a
//! deterministic scheduler, ingesting disturbance streams
//! ([`Command::Displace`]), answering coverage queries, and durable
//! through [`laacad::Session::snapshot`] / restore.
//!
//! Three layers:
//!
//! * **Snapshots** — the `laacad-snapshot/1` format lives in
//!   [`laacad::snapshot`]; this crate consumes it for admission records
//!   and the [`Command::Snapshot`] request.
//! * **Scheduling** — [`SessionHost`] owns N sessions with per-session
//!   FIFO command queues, drained in ascending session-id order each
//!   [`SessionHost::tick`] and executed in parallel over `laacad-exec`
//!   workers (one worker per session; sessions are independent, so any
//!   thread count yields identical results).
//! * **Backpressure** — queues are bounded ([`HostConfig`]); a full
//!   queue either refuses the submission ([`QueuePolicy::Reject`]) or
//!   drops the oldest pending command ([`QueuePolicy::ShedOldest`]), and
//!   a per-session tick budget keeps one chatty client from starving
//!   the batch. Host health flows through the standard telemetry
//!   [`Recorder`](laacad::Recorder) as per-tick counters.
//!
//! Every run is captured in an append-only [`CommandLog`] whose
//! admission entries carry full snapshot bytes, so
//! [`SessionHost::replay`] reproduces a host run **byte-for-byte** from
//! the log alone.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod command;
mod host;

pub use command::{Command, CommandLog, CoverageAnswer, LogEntry, Response, SessionId};
pub use host::{HostConfig, HostStats, QueuePolicy, ReplayError, SessionHost, SubmitError};

#[cfg(test)]
mod tests {
    use super::*;
    use laacad::{LaacadConfig, NetworkEvent, Session};
    use laacad_region::{sampling::sample_uniform, Region};
    use laacad_wsn::NodeId;

    fn session(n: usize, seed: u64) -> Session {
        let region = Region::square(1.0).unwrap();
        let config = LaacadConfig::builder(1)
            .transmission_range(0.3)
            .alpha(0.6)
            .max_rounds(80)
            .build()
            .unwrap();
        Session::builder(config)
            .positions(sample_uniform(&region, n, seed))
            .region(region)
            .build()
            .unwrap()
    }

    #[test]
    fn submit_and_tick_round_trip() {
        let mut host = SessionHost::new(HostConfig::default());
        let a = host.admit(session(14, 1));
        let b = host.admit(session(14, 2));
        host.submit(a, Command::Step).unwrap();
        host.submit(b, Command::Step).unwrap();
        host.submit(b, Command::QueryCoverage { samples: 200 })
            .unwrap();
        let results = host.tick();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].0, a);
        assert!(matches!(results[0].1[0], Response::Stepped(_)));
        assert!(matches!(results[1].1[1], Response::Coverage(_)));
        assert_eq!(host.stats().executed, 3);
        assert_eq!(host.queue_depth(a), Some(0));
    }

    #[test]
    fn reject_policy_bounds_the_queue() {
        let mut host = SessionHost::new(HostConfig {
            queue_capacity: 2,
            policy: QueuePolicy::Reject,
            ..HostConfig::default()
        });
        let id = host.admit(session(14, 3));
        host.submit(id, Command::Step).unwrap();
        host.submit(id, Command::Step).unwrap();
        assert_eq!(
            host.submit(id, Command::Step).unwrap_err(),
            SubmitError::QueueFull
        );
        assert_eq!(host.stats().rejected, 1);
        assert_eq!(host.queue_depth(id), Some(2));
    }

    #[test]
    fn shed_policy_drops_the_oldest() {
        let mut host = SessionHost::new(HostConfig {
            queue_capacity: 2,
            policy: QueuePolicy::ShedOldest,
            ..HostConfig::default()
        });
        let id = host.admit(session(14, 4));
        host.submit(id, Command::QueryCoverage { samples: 10 })
            .unwrap();
        host.submit(id, Command::Step).unwrap();
        // Capacity 2: this sheds the coverage query, keeps both steps.
        host.submit(id, Command::Step).unwrap();
        assert_eq!(host.stats().shed, 1);
        let results = host.tick();
        assert_eq!(results[0].1.len(), 2);
        assert!(results[0]
            .1
            .iter()
            .all(|r| matches!(r, Response::Stepped(_))));
    }

    #[test]
    fn tick_budget_limits_per_session_work() {
        let mut host = SessionHost::new(HostConfig {
            tick_budget: 1,
            ..HostConfig::default()
        });
        let id = host.admit(session(14, 5));
        host.submit(id, Command::Step).unwrap();
        host.submit(id, Command::Step).unwrap();
        assert_eq!(host.tick()[0].1.len(), 1);
        assert_eq!(host.queue_depth(id), Some(1));
        assert_eq!(host.tick()[0].1.len(), 1);
        assert_eq!(host.queue_depth(id), Some(0));
    }

    #[test]
    fn failed_commands_leave_sessions_untouched() {
        let mut host = SessionHost::new(HostConfig::default());
        let id = host.admit(session(14, 6));
        let before = host.session(id).unwrap().snapshot();
        host.submit(id, Command::ApplyEvent(NetworkEvent::SetK(999)))
            .unwrap();
        host.submit(
            id,
            Command::Displace(vec![(NodeId(0), laacad_geom::Point::new(9.0, 9.0))]),
        )
        .unwrap();
        let results = host.tick();
        assert!(matches!(results[0].1[0], Response::Failed(_)));
        assert!(matches!(results[0].1[1], Response::Failed(_)));
        assert_eq!(host.session(id).unwrap().snapshot(), before);
    }

    #[test]
    fn replay_reproduces_sessions_byte_for_byte() {
        let mut host = SessionHost::new(HostConfig {
            threads: 2,
            ..HostConfig::default()
        });
        let a = host.admit(session(14, 7));
        let b = host.admit(session(14, 8));
        for _ in 0..3 {
            host.submit(a, Command::Step).unwrap();
            host.submit(b, Command::Step).unwrap();
            host.tick();
        }
        host.retire(b);
        host.submit(a, Command::Step).unwrap();
        host.tick();
        let replayed = SessionHost::replay(host.log()).unwrap();
        assert_eq!(
            replayed.session(a).unwrap().snapshot(),
            host.session(a).unwrap().snapshot()
        );
        assert!(replayed.session(b).is_none());
        assert_eq!(replayed.log(), host.log());
    }

    #[test]
    fn unknown_and_retired_sessions_refuse_commands() {
        let mut host = SessionHost::new(HostConfig::default());
        let id = host.admit(session(14, 9));
        assert_eq!(
            host.submit(SessionId(5), Command::Step).unwrap_err(),
            SubmitError::UnknownSession
        );
        let retired = host.retire(id).unwrap();
        assert_eq!(retired.rounds_executed(), 0);
        assert_eq!(
            host.submit(id, Command::Step).unwrap_err(),
            SubmitError::UnknownSession
        );
        assert_eq!(host.sessions_live(), 0);
    }
}
