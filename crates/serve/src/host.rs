//! The multi-session scheduler with admission control and backpressure.

use std::collections::VecDeque;

use laacad::{Recorder, Session, SessionBuilder, SnapshotError};
use laacad_coverage::evaluate_coverage;
use laacad_exec::parallel_map_with;

use crate::command::{Command, CommandLog, CoverageAnswer, LogEntry, Response, SessionId};

/// What to do when a command arrives at a full session queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueuePolicy {
    /// Refuse the new command ([`SubmitError::QueueFull`]); the queue is
    /// untouched. The default — clients see their own overload.
    #[default]
    Reject,
    /// Drop the oldest queued command to make room — freshest-data wins,
    /// the right shape for disturbance streams where a newer
    /// displacement supersedes a stale one.
    ShedOldest,
}

/// Host scheduling and admission parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostConfig {
    /// Per-session command queue bound (minimum 1).
    pub queue_capacity: usize,
    /// Full-queue behavior.
    pub policy: QueuePolicy,
    /// Commands executed per session per tick; `0` means drain the
    /// whole queue. A bounded budget keeps one chatty session from
    /// starving the batch.
    pub tick_budget: usize,
    /// Worker threads for the tick fan-out over sessions (`0` = all
    /// cores). Sessions execute independently, one worker each, so any
    /// value yields identical results.
    pub threads: usize,
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig {
            queue_capacity: 64,
            policy: QueuePolicy::Reject,
            tick_budget: 8,
            threads: 0,
        }
    }
}

/// Why a submission was not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// No live session under that id (never admitted, or retired).
    UnknownSession,
    /// The session's queue is at capacity under [`QueuePolicy::Reject`].
    QueueFull,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::UnknownSession => write!(f, "unknown session"),
            SubmitError::QueueFull => write!(f, "session queue full"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why a [`SessionHost::replay`] failed.
#[derive(Debug)]
pub enum ReplayError {
    /// An admission snapshot failed to restore.
    Snapshot(SnapshotError),
    /// A logged submission was not accepted on replay — the log and
    /// config disagree (e.g. a smaller queue bound than the recording
    /// host's).
    Submit(SubmitError),
    /// A logged entry referenced a session the replaying host does not
    /// have.
    UnknownSession(SessionId),
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Snapshot(e) => write!(f, "replay: bad admission snapshot: {e}"),
            ReplayError::Submit(e) => write!(f, "replay: logged submission refused: {e}"),
            ReplayError::UnknownSession(id) => write!(f, "replay: {id} does not exist"),
        }
    }
}

impl std::error::Error for ReplayError {}

/// Running totals over a host's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HostStats {
    /// Sessions ever admitted.
    pub admitted: u64,
    /// Sessions retired.
    pub retired: u64,
    /// Scheduling ticks run.
    pub ticks: u64,
    /// Commands accepted into queues.
    pub accepted: u64,
    /// Commands executed by ticks.
    pub executed: u64,
    /// Commands dropped by [`QueuePolicy::ShedOldest`].
    pub shed: u64,
    /// Commands refused by [`QueuePolicy::Reject`].
    pub rejected: u64,
}

/// One hosted session and its bounded command queue. The session is
/// `None` only transiently, while it is out with the tick fan-out.
#[derive(Debug)]
struct Hosted {
    session: Option<Session>,
    queue: VecDeque<Command>,
}

/// A deterministic multi-session scheduler.
///
/// The host owns N concurrent [`Session`]s, each with a bounded command
/// queue. [`SessionHost::tick`] drains every queue (up to the per-session
/// tick budget) in **ascending session-id order** and fans the batches
/// out over `laacad-exec` workers — one worker per session, sessions
/// mutually independent — so a tick's results are identical at any
/// thread count. Everything that shapes the run is captured in an
/// append-only [`CommandLog`] (admissions carry snapshot bytes), and
/// [`SessionHost::replay`] reproduces the run byte-for-byte from the
/// log alone.
///
/// # Example
///
/// ```
/// use laacad::{LaacadConfig, Session};
/// use laacad_region::{sampling::sample_uniform, Region};
/// use laacad_serve::{Command, HostConfig, Response, SessionHost};
///
/// let region = Region::square(1.0)?;
/// let config = LaacadConfig::builder(1)
///     .transmission_range(0.3)
///     .max_rounds(50)
///     .build()?;
/// let session = Session::builder(config)
///     .positions(sample_uniform(&region, 12, 7))
///     .region(region)
///     .build()?;
/// let mut host = SessionHost::new(HostConfig::default());
/// let id = host.admit(session);
/// host.submit(id, Command::Step)?;
/// let results = host.tick();
/// assert!(matches!(results[0].1[0], Response::Stepped(_)));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct SessionHost {
    config: HostConfig,
    /// Slot per [`SessionId`]; retired slots stay `None` (ids are never
    /// reused).
    slots: Vec<Option<Hosted>>,
    log: CommandLog,
    stats: HostStats,
    /// Stats already reported to the recorder (per-tick deltas).
    reported: HostStats,
    recorder: Option<Box<dyn Recorder>>,
}

impl SessionHost {
    /// Creates an empty host.
    pub fn new(config: HostConfig) -> Self {
        let config = HostConfig {
            queue_capacity: config.queue_capacity.max(1),
            ..config
        };
        SessionHost {
            config,
            slots: Vec::new(),
            log: CommandLog {
                config,
                entries: Vec::new(),
            },
            stats: HostStats::default(),
            reported: HostStats::default(),
            recorder: None,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &HostConfig {
        &self.config
    }

    /// Admits a session, returning its id. The session's snapshot is
    /// recorded in the command log as the replay starting point.
    pub fn admit(&mut self, session: Session) -> SessionId {
        let id = SessionId(self.slots.len());
        self.log.entries.push(LogEntry::Admit {
            snapshot: session.snapshot(),
        });
        self.slots.push(Some(Hosted {
            session: Some(session),
            queue: VecDeque::new(),
        }));
        self.stats.admitted += 1;
        id
    }

    /// Removes a session from scheduling and returns it. Pending queued
    /// commands are dropped (counted as shed).
    pub fn retire(&mut self, id: SessionId) -> Option<Session> {
        let hosted = self.slots.get_mut(id.0)?.take()?;
        self.log.entries.push(LogEntry::Retire { session: id });
        self.stats.retired += 1;
        self.stats.shed += hosted.queue.len() as u64;
        hosted.session
    }

    /// Enqueues a command for `id`, applying the admission policy at a
    /// full queue.
    ///
    /// # Errors
    ///
    /// [`SubmitError::UnknownSession`] for dead ids;
    /// [`SubmitError::QueueFull`] under [`QueuePolicy::Reject`] at
    /// capacity (the command did not enter and is not logged).
    pub fn submit(&mut self, id: SessionId, command: Command) -> Result<(), SubmitError> {
        let hosted = self
            .slots
            .get_mut(id.0)
            .and_then(|s| s.as_mut())
            .ok_or(SubmitError::UnknownSession)?;
        if hosted.queue.len() >= self.config.queue_capacity {
            match self.config.policy {
                QueuePolicy::Reject => {
                    self.stats.rejected += 1;
                    return Err(SubmitError::QueueFull);
                }
                QueuePolicy::ShedOldest => {
                    hosted.queue.pop_front();
                    self.stats.shed += 1;
                }
            }
        }
        self.log.entries.push(LogEntry::Submit {
            session: id,
            command: command.clone(),
        });
        hosted.queue.push_back(command);
        self.stats.accepted += 1;
        Ok(())
    }

    /// Runs one scheduling tick: drains up to `tick_budget` commands
    /// from every live session's queue in ascending id order and
    /// executes the per-session batches in parallel over the exec
    /// workers. Returns `(id, responses)` for every session that
    /// executed at least one command, in id order — identical at any
    /// `threads` setting (sessions are independent and results are
    /// collected in input order).
    pub fn tick(&mut self) -> Vec<(SessionId, Vec<Response>)> {
        self.log.entries.push(LogEntry::Tick);
        self.stats.ticks += 1;
        let budget = if self.config.tick_budget == 0 {
            usize::MAX
        } else {
            self.config.tick_budget
        };
        // Pull every session with pending work out of its slot together
        // with its drained batch; the slot keeps the remaining queue and
        // is refilled from the fan-out results.
        let mut work: Vec<(usize, Session, Vec<Command>)> = Vec::new();
        for (i, slot) in self.slots.iter_mut().enumerate() {
            let Some(hosted) = slot.as_mut() else {
                continue;
            };
            if hosted.queue.is_empty() {
                continue;
            }
            let take = hosted.queue.len().min(budget);
            let batch: Vec<Command> = hosted.queue.drain(..take).collect();
            let session = hosted.session.take().expect("session out during tick");
            work.push((i, session, batch));
        }
        let results = parallel_map_with(self.config.threads, work, |(i, mut session, batch)| {
            let responses: Vec<Response> = batch
                .into_iter()
                .map(|c| Self::execute(&mut session, c))
                .collect();
            (i, session, responses)
        });
        let mut out = Vec::with_capacity(results.len());
        for (i, session, responses) in results {
            self.stats.executed += responses.len() as u64;
            let hosted = self.slots[i].as_mut().expect("slot emptied mid-tick");
            hosted.session = Some(session);
            out.push((SessionId(i), responses));
        }
        self.emit_telemetry();
        out
    }

    /// Executes one command against one session.
    fn execute(session: &mut Session, command: Command) -> Response {
        match command {
            Command::Step => Response::Stepped(session.step()),
            Command::Displace(moves) => match session.displace_nodes(&moves) {
                Ok(n) => Response::Displaced(n),
                Err(e) => Response::Failed(e.to_string()),
            },
            Command::ApplyEvent(event) => match session.apply_event(event) {
                Ok(outcome) => Response::EventApplied(outcome),
                Err(e) => Response::Failed(e.to_string()),
            },
            Command::QueryCoverage { samples } => {
                let report = evaluate_coverage(
                    session.network(),
                    session.region(),
                    session.config().k,
                    samples,
                );
                Response::Coverage(CoverageAnswer {
                    k: report.k,
                    samples: report.samples,
                    covered_fraction: report.covered_fraction,
                    min_degree: report.min_degree,
                    mean_degree: report.mean_degree,
                })
            }
            Command::Snapshot => Response::Snapshot(session.snapshot()),
        }
    }

    /// Per-tick host telemetry through the standard [`Recorder`]: live
    /// session count, executed/accepted/shed/rejected deltas, and the
    /// deepest remaining queue. The tick index stands in for the round.
    fn emit_telemetry(&mut self) {
        let Some(recorder) = self.recorder.as_mut() else {
            return;
        };
        if !recorder.enabled() {
            return;
        }
        let tick = self.stats.ticks as usize;
        let live = self.slots.iter().flatten().count() as u64;
        let deepest = self
            .slots
            .iter()
            .flatten()
            .map(|h| h.queue.len() as u64)
            .max()
            .unwrap_or(0);
        recorder.counter("host_sessions_live", tick, live);
        recorder.counter(
            "host_commands_executed",
            tick,
            self.stats.executed - self.reported.executed,
        );
        recorder.counter(
            "host_commands_accepted",
            tick,
            self.stats.accepted - self.reported.accepted,
        );
        recorder.counter(
            "host_commands_shed",
            tick,
            self.stats.shed - self.reported.shed,
        );
        recorder.counter(
            "host_commands_rejected",
            tick,
            self.stats.rejected - self.reported.rejected,
        );
        recorder.counter("host_queue_depth_max", tick, deepest);
        recorder.round_end(tick);
        self.reported = self.stats;
    }

    /// Read access to a hosted session.
    pub fn session(&self, id: SessionId) -> Option<&Session> {
        self.slots
            .get(id.0)?
            .as_ref()
            .and_then(|h| h.session.as_ref())
    }

    /// Pending queue depth of a session (`None` for dead ids).
    pub fn queue_depth(&self, id: SessionId) -> Option<usize> {
        self.slots.get(id.0)?.as_ref().map(|h| h.queue.len())
    }

    /// Number of live (admitted, not retired) sessions.
    pub fn sessions_live(&self) -> usize {
        self.slots.iter().flatten().count()
    }

    /// Lifetime totals.
    pub fn stats(&self) -> HostStats {
        self.stats
    }

    /// The append-only record of this run.
    pub fn log(&self) -> &CommandLog {
        &self.log
    }

    /// Consumes the host, returning the command log (e.g. to persist it
    /// and replay elsewhere).
    pub fn into_log(self) -> CommandLog {
        self.log
    }

    /// Installs a host-level telemetry recorder (counters per tick, see
    /// [`SessionHost::tick`]); purely observational, like the engine's.
    pub fn set_recorder(&mut self, recorder: Box<dyn Recorder>) {
        self.recorder = Some(recorder);
    }

    /// Removes and returns the installed recorder.
    pub fn take_recorder(&mut self) -> Option<Box<dyn Recorder>> {
        self.recorder.take()
    }

    /// Reconstructs a host run from its command log: restores every
    /// admission snapshot, re-submits every accepted command, and
    /// re-runs every tick. Because queues, budgets, and per-session
    /// execution are all deterministic, the replayed host's sessions are
    /// **byte-for-byte identical** to the original's — compare
    /// [`laacad::Session::snapshot`] bytes (pinned by
    /// `tests/host_scheduler.rs`). Responses are discarded; the replay's
    /// own log equals the input log.
    ///
    /// # Errors
    ///
    /// [`ReplayError`] when the log is internally inconsistent (bad
    /// snapshot bytes, submissions to dead sessions).
    pub fn replay(log: &CommandLog) -> Result<SessionHost, ReplayError> {
        let mut host = SessionHost::new(log.config);
        for entry in &log.entries {
            match entry {
                LogEntry::Admit { snapshot } => {
                    let session =
                        SessionBuilder::restore(snapshot).map_err(ReplayError::Snapshot)?;
                    host.admit(session);
                }
                LogEntry::Submit { session, command } => {
                    host.submit(*session, command.clone())
                        .map_err(ReplayError::Submit)?;
                }
                LogEntry::Retire { session } => {
                    host.retire(*session)
                        .ok_or(ReplayError::UnknownSession(*session))?;
                }
                LogEntry::Tick => {
                    host.tick();
                }
            }
        }
        Ok(host)
    }
}
