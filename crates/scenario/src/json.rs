//! JSON parser and serializer over [`Value`].
//!
//! Scenario specs may be written in JSON instead of TOML, and the
//! campaign result store emits JSONL (one JSON object per line). The
//! serializer is deterministic: table keys are sorted (`BTreeMap`) and
//! floats use Rust's shortest round-trip formatting, which is what makes
//! byte-identical campaign reruns possible.

use crate::value::Value;
use std::collections::BTreeMap;
use std::fmt;

/// JSON parse error with a byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// Problem description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

/// Parses a JSON document.
pub fn parse(text: &str) -> Result<Value, JsonError> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing characters after document"));
    }
    Ok(value)
}

fn err(offset: usize, message: impl Into<String>) -> JsonError {
    JsonError {
        offset,
        message: message.into(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Value::Str(String::new())),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(err(*pos, format!("expected `{lit}`")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, JsonError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii digits");
    if text.contains('.') || text.contains('e') || text.contains('E') {
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| err(start, format!("invalid number `{text}`")))
    } else {
        text.parse::<i64>()
            .map(Value::Int)
            .map_err(|_| err(start, format!("invalid number `{text}`")))
    }
}

fn parse_hex4(bytes: &[u8], at: usize) -> Result<u32, JsonError> {
    let hex = bytes
        .get(at..at + 4)
        .ok_or_else(|| err(at, "bad \\u escape"))?;
    let hex = std::str::from_utf8(hex).map_err(|_| err(at, "bad \\u escape"))?;
    u32::from_str_radix(hex, 16).map_err(|_| err(at, "bad \\u escape"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(err(*pos, "expected `\"`"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'u') => {
                        let n = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        let c = if (0xD800..0xDC00).contains(&n) {
                            // High surrogate: a low surrogate must follow.
                            if bytes.get(*pos + 1..*pos + 3) != Some(b"\\u") {
                                return Err(err(*pos, "unpaired surrogate in \\u escape"));
                            }
                            let low = parse_hex4(bytes, *pos + 3)?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(err(*pos, "invalid low surrogate in \\u escape"));
                            }
                            *pos += 6;
                            let combined = 0x10000 + ((n - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(combined)
                                .ok_or_else(|| err(*pos, "bad surrogate pair"))?
                        } else {
                            char::from_u32(n)
                                .ok_or_else(|| err(*pos, "unpaired surrogate in \\u escape"))?
                        };
                        out.push(c);
                    }
                    other => return Err(err(*pos, format!("bad escape {other:?}"))),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance one UTF-8 code point.
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| err(*pos, "invalid UTF-8"))?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, JsonError> {
    *pos += 1; // consume `[`
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(err(*pos, "expected `,` or `]`")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, JsonError> {
    *pos += 1; // consume `{`
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Table(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(err(*pos, "expected `:`"));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Table(map));
            }
            _ => return Err(err(*pos, "expected `,` or `}`")),
        }
    }
}

/// Serializes a [`Value`] as compact single-line JSON (JSONL-friendly).
pub fn to_string(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value);
    out
}

fn write_value(out: &mut String, value: &Value) {
    match value {
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(x) => out.push_str(&float_json(*x)),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Table(map) => {
            out.push('{');
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, v);
            }
            out.push('}');
        }
    }
}

/// JSON float formatting: shortest round-trip, integral values keep a
/// `.0`. JSON has no `NaN`/`inf`, so non-finite values serialize as
/// `null` — loud and unmistakable, rather than a plausible-looking
/// number (scenario metrics are finite in any healthy run).
fn float_json(x: f64) -> String {
    if !x.is_finite() {
        return "null".to_string();
    }
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{x:.1}")
    } else {
        format!("{x}")
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_serializes() {
        let doc = r#"{"a": 1, "b": [0.5, true, "x\n"], "c": {"d": -2}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_i64(), Some(1));
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_i64(), Some(-2));
        let text = to_string(&v);
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn serialization_is_deterministic_and_sorted() {
        let mut t = Value::table();
        t.insert("zeta", Value::Int(1));
        t.insert("alpha", Value::Float(0.25));
        assert_eq!(to_string(&t), r#"{"alpha":0.25,"zeta":1}"#);
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        assert_eq!(to_string(&Value::Float(3.0)), "3.0");
        assert_eq!(to_string(&Value::Float(0.1)), "0.1");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = parse(r#""corner \ud83d\ude00 test""#).unwrap();
        assert_eq!(v.as_str(), Some("corner \u{1F600} test"));
        // Raw non-BMP characters pass through unescaped too.
        let v = parse("\"corner \u{1F600} test\"").unwrap();
        assert_eq!(v.as_str(), Some("corner \u{1F600} test"));
        // Lone or malformed surrogates are errors, not U+FFFD mush.
        assert!(parse(r#""\ud83d""#).is_err());
        assert!(parse(r#""\ud83dA""#).is_err());
        assert!(parse(r#""\udc00""#).is_err());
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(to_string(&Value::Float(f64::NAN)), "null");
        assert_eq!(to_string(&Value::Float(f64::INFINITY)), "null");
    }
}
