//! # laacad-scenario — declarative scenarios, dynamic events, campaigns
//!
//! The paper evaluates LAACAD on a handful of hand-coded setups; this
//! crate turns "a setup" into data. A [`ScenarioSpec`] — written in TOML
//! or JSON (see `scenarios/` at the repository root) or built
//! programmatically — describes:
//!
//! * the **region** (named gallery entry, square/rect, or custom polygon
//!   with obstacle holes),
//! * the **initial placement** (uniform, clustered, corner-dump, custom),
//! * the **LAACAD configuration** (with `γ`/`ε` derived from the region
//!   and population when omitted),
//! * a timeline of **dynamic events** — node failures (random fraction,
//!   explicit ids, or disk-shaped destruction), battery depletion via the
//!   [`laacad_wsn::energy`] model, node insertion, and mid-run `k`/`α`
//!   changes — compiled onto the runner through the
//!   [`laacad::RoundHook`] API,
//! * an optional **fault model** (`[faults]`: message loss, duplication,
//!   per-link delay distributions, crash/recover) that routes the run
//!   through the asynchronous message-driven executor in `laacad-dist`
//!   and reports convergence-under-faults metrics next to a fault-free
//!   baseline,
//! * and **evaluation** settings (coverage sampling, energy exponent).
//!
//! A [`CampaignSpec`] sweeps a scenario over a seed × parameter grid and
//! [`run_campaign`] executes the cells across all cores
//! ([`exec::parallel_map`]), streaming per-round metrics and final
//! [`laacad_coverage::CoverageReport`]s into a deterministic JSONL/CSV
//! [`ResultStore`]: same campaign, same bytes, every time.
//!
//! # Example
//!
//! ```
//! use laacad_scenario::{run_campaign, CampaignSpec, ScenarioSpec};
//!
//! let toml = r#"
//! name = "quick"
//! [region]
//! kind = "named"
//! name = "unit_square"
//! [placement]
//! kind = "uniform"
//! n = 12
//! [laacad]
//! k = 1
//! max_rounds = 40
//! [[events]]
//! round = 10
//! action = "fail_fraction"
//! fraction = 0.1
//! "#;
//! let spec = ScenarioSpec::from_toml(toml)?;
//! let campaign = CampaignSpec::over_seeds(spec, [1, 2]);
//! let results = run_campaign(&campaign)?;
//! assert_eq!(results.len(), 2);
//! for cell in &results {
//!     let outcome = cell.outcome.as_ref().expect("cell ran");
//!     assert!(outcome.coverage.covered_fraction > 0.9);
//!     assert_eq!(outcome.events.len(), 1); // the failure fired
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod campaign;
pub mod checkpoint;
pub mod engine;
pub mod events;
pub mod exec;
pub mod json;
pub mod results;
pub mod spec;
pub mod toml;
pub mod value;

pub use campaign::{
    run_campaign, run_campaign_observed, run_campaign_streamed, CampaignCell, CampaignProgress,
    CampaignRunOptions, CampaignSpec, CellInfo, CellResult, ParamGrid, ZipSpec,
};
pub use checkpoint::{
    resume_scenario, run_scenario_checkpointed, ScenarioCheckpoint, CHECKPOINT_MAGIC,
};
pub use engine::{
    build_scenario, recovery_metrics, run_scenario, run_scenario_recorded, FaultOutcome,
    RecoverySummary, RoundMetric, ScenarioOutcome,
};
pub use events::{AppliedEvent, TimelineHook};
pub use results::{to_csv, to_jsonl, ResultStore, StreamingResultFiles};
pub use spec::{
    AlgorithmSpec, BackoffSpec, CrashSpec, DelaySpec, EvaluationSpec, EventAction, EventSpec,
    FaultSpec, PartitionKindSpec, PartitionSpec, PlacementSpec, RegionSpec, ScenarioSpec,
    SpecError,
};
pub use value::Value;
