//! Campaigns: seed × parameter grids over a scenario, run in parallel.
//!
//! A [`CampaignSpec`] pairs one [`ScenarioSpec`] with a [`ParamGrid`]
//! sweeping seeds and (optionally) `n`, `k`, `α`, `γ` and — for
//! `[faults]`-bearing scenarios — message `loss`, mean link
//! `delay`, and Byzantine `corruption` rate — as the full
//! cross product (the default), zipped position-by-position (`zip =
//! true`, for sweeps whose axes all move together), or **mixed**: a
//! [`ZipSpec::Axes`] group (`zip = ["n", "gamma"]`) fuses the named
//! axes into one position-by-position slot while the remaining axes
//! still cross — e.g. `n` with a matched `γ`, swept against every `k`.
//! [`expand`] unrolls the grid into an ordered list of
//! [`CampaignCell`]s — the order is a pure function of the spec, which
//! is what makes campaign reruns byte-identical — and [`run_campaign`]
//! executes the cells across all cores via [`crate::exec::parallel_map`].
//! [`run_campaign_observed`] adds streaming persistence, per-cell
//! telemetry files, and a live progress callback.
//!
//! [`expand`]: CampaignSpec::expand

use crate::checkpoint::{run_checkpointed_impl, ScenarioCheckpoint};
use crate::engine::{run_scenario, run_scenario_recorded, ScenarioOutcome};
use crate::exec::parallel_map;
use crate::results::ResultStore;
use crate::spec::{DelaySpec, ScenarioSpec, SpecError};
use crate::value::{decode, encode, DecodeError, Value};
use laacad::{Recorder, SessionTelemetry};
use laacad_exec::parallel_map_visit;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// The sweep axes. Empty vectors mean "use the scenario's own value".
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ParamGrid {
    /// Seeds to run (one cell per seed per parameter combination).
    /// Empty means the single seed `0`.
    pub seeds: Vec<u64>,
    /// Node-count overrides.
    pub n: Vec<usize>,
    /// Coverage-degree overrides.
    pub k: Vec<usize>,
    /// Step-size overrides.
    pub alpha: Vec<f64>,
    /// Transmission-range overrides (an explicit `γ` per cell; the
    /// scenario's own value — or the derived recommendation — applies
    /// where empty).
    pub gamma: Vec<f64>,
    /// Message-loss probability overrides (requires the scenario to
    /// carry a `[faults]` section).
    pub loss: Vec<f64>,
    /// Mean link-delay overrides, in ticks: `0` means no delay, any
    /// other value an exponential distribution with that mean (requires
    /// a `[faults]` section).
    pub delay: Vec<f64>,
    /// Byzantine corruption-rate overrides (requires a `[faults]`
    /// section): the probability that a transmitted HELLO is replaced by
    /// an adversarially mutated payload.
    pub corruption: Vec<f64>,
    /// How the parameter axes combine (seeds always cross): full cross
    /// product, all axes zipped, or a named zip group alongside crossed
    /// axes. See [`ZipSpec`].
    pub zip: ZipSpec,
}

/// How a [`ParamGrid`]'s parameter axes combine into tuples.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum ZipSpec {
    /// Full cross product of the non-empty axes (the default; TOML
    /// `zip = false` or absent).
    #[default]
    None,
    /// Zip **every** non-empty parameter axis position by position —
    /// they must share one length (TOML `zip = true`).
    All,
    /// Zip exactly the named axes (`"n"`, `"k"`, `"alpha"`, `"gamma"`,
    /// `"loss"`, `"delay"`, `"corruption"`) as one fused group of
    /// equal-length lists; the remaining non-empty axes still cross
    /// against it (TOML `zip = ["n", "gamma"]`). The group occupies its
    /// first member's position in the canonical `n` × `k` × `alpha` ×
    /// `gamma` × `loss` × `delay` × `corruption` expansion order.
    Axes(Vec<String>),
}

impl ParamGrid {
    /// A grid running the scenario as-is over `count` seeds starting at
    /// `start`.
    pub fn seed_range(start: u64, count: usize) -> Self {
        ParamGrid {
            seeds: (0..count as u64).map(|i| start + i).collect(),
            ..ParamGrid::default()
        }
    }

    fn from_value(v: &Value, path: &str) -> Result<Self, SpecError> {
        let list_u64 = |key: &str| -> Result<Vec<u64>, SpecError> {
            match v.get(key) {
                None => Ok(Vec::new()),
                Some(a) => {
                    let p = format!("{path}.{key}");
                    a.as_array()
                        .ok_or_else(|| SpecError::from(DecodeError::new(&p, "expected array")))?
                        .iter()
                        .enumerate()
                        .map(|(i, x)| {
                            decode::to_usize(x, &format!("{p}[{i}]"))
                                .map(|u| u as u64)
                                .map_err(SpecError::from)
                        })
                        .collect()
                }
            }
        };
        let list_usize = |key: &str| -> Result<Vec<usize>, SpecError> {
            list_u64(key).map(|xs| xs.into_iter().map(|x| x as usize).collect())
        };
        let list_f64 = |key: &str| -> Result<Vec<f64>, SpecError> {
            match v.get(key) {
                None => Ok(Vec::new()),
                Some(a) => {
                    let p = format!("{path}.{key}");
                    a.as_array()
                        .ok_or_else(|| SpecError::from(DecodeError::new(&p, "expected array")))?
                        .iter()
                        .enumerate()
                        .map(|(i, x)| {
                            x.as_f64().ok_or_else(|| {
                                SpecError::from(DecodeError::new(
                                    format!("{p}[{i}]"),
                                    "expected number",
                                ))
                            })
                        })
                        .collect()
                }
            }
        };
        let mut seeds = list_u64("seeds")?;
        if seeds.is_empty() {
            if let (Some(start), Some(count)) = (
                decode::opt_usize(v, "seed_start", path)?,
                decode::opt_usize(v, "seed_count", path)?,
            ) {
                seeds = (0..count as u64).map(|i| start as u64 + i).collect();
            }
        }
        let zip = match v.get("zip") {
            None => ZipSpec::None,
            Some(Value::Bool(true)) => ZipSpec::All,
            Some(Value::Bool(false)) => ZipSpec::None,
            Some(Value::Array(items)) => {
                let p = format!("{path}.zip");
                ZipSpec::Axes(
                    items
                        .iter()
                        .enumerate()
                        .map(|(i, x)| {
                            x.as_str().map(str::to_owned).ok_or_else(|| {
                                SpecError::from(DecodeError::new(
                                    format!("{p}[{i}]"),
                                    "expected axis name string",
                                ))
                            })
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                )
            }
            Some(_) => {
                return Err(DecodeError::new(
                    format!("{path}.zip"),
                    "expected bool or array of axis names",
                )
                .into())
            }
        };
        Ok(ParamGrid {
            seeds,
            n: list_usize("n")?,
            k: list_usize("k")?,
            alpha: list_f64("alpha")?,
            gamma: list_f64("gamma")?,
            loss: list_f64("loss")?,
            delay: list_f64("delay")?,
            corruption: list_f64("corruption")?,
            zip,
        })
    }

    fn to_value(&self) -> Value {
        let mut t = Value::table();
        if !self.seeds.is_empty() {
            t.insert(
                "seeds",
                Value::Array(self.seeds.iter().map(|&s| Value::Int(s as i64)).collect()),
            );
        }
        if !self.n.is_empty() {
            t.insert(
                "n",
                Value::Array(self.n.iter().map(|&x| encode::int(x)).collect()),
            );
        }
        if !self.k.is_empty() {
            t.insert(
                "k",
                Value::Array(self.k.iter().map(|&x| encode::int(x)).collect()),
            );
        }
        if !self.alpha.is_empty() {
            t.insert(
                "alpha",
                Value::Array(self.alpha.iter().map(|&x| Value::Float(x)).collect()),
            );
        }
        if !self.gamma.is_empty() {
            t.insert(
                "gamma",
                Value::Array(self.gamma.iter().map(|&x| Value::Float(x)).collect()),
            );
        }
        if !self.loss.is_empty() {
            t.insert(
                "loss",
                Value::Array(self.loss.iter().map(|&x| Value::Float(x)).collect()),
            );
        }
        if !self.delay.is_empty() {
            t.insert(
                "delay",
                Value::Array(self.delay.iter().map(|&x| Value::Float(x)).collect()),
            );
        }
        if !self.corruption.is_empty() {
            t.insert(
                "corruption",
                Value::Array(self.corruption.iter().map(|&x| Value::Float(x)).collect()),
            );
        }
        match &self.zip {
            ZipSpec::None => {}
            ZipSpec::All => t.insert("zip", Value::Bool(true)),
            ZipSpec::Axes(axes) => t.insert(
                "zip",
                Value::Array(axes.iter().map(|a| Value::Str(a.clone())).collect()),
            ),
        }
        t
    }
}

/// One resolved parameter tuple of the sweep: `(n, k, α, γ override,
/// loss override, delay override, corruption override)`.
type ParamTuple = (
    usize,
    usize,
    f64,
    Option<f64>,
    Option<f64>,
    Option<f64>,
    Option<f64>,
);

/// A scenario plus the grid to sweep it over.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Campaign name (result files are named after it).
    pub name: String,
    /// The scenario template.
    pub scenario: ScenarioSpec,
    /// The sweep.
    pub grid: ParamGrid,
    /// Checkpoint cadence in rounds (`0` = off, the default). When set,
    /// [`run_campaign_observed`] writes a `<name>.cell<index>.checkpoint`
    /// file (the `laacad-checkpoint/1` format of [`crate::checkpoint`])
    /// beside the result store every `checkpoint_every` rounds of each
    /// synchronous cell, removes it when the cell completes, and
    /// **resumes from it** when a killed campaign is rerun — with
    /// results bit-identical to an uninterrupted run. Cells carrying a
    /// `[faults]` section run on the asynchronous executor and are
    /// executed without checkpointing.
    pub checkpoint_every: usize,
}

/// One fully resolved unit of campaign work.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignCell {
    /// Position in the expansion order (also the JSONL line index).
    pub index: usize,
    /// The scenario with all overrides applied.
    pub scenario: ScenarioSpec,
    /// Seed for this cell.
    pub seed: u64,
    /// Effective node count.
    pub n: usize,
    /// Effective coverage degree.
    pub k: usize,
    /// Effective step size.
    pub alpha: f64,
    /// Explicit transmission-range override, when the grid swept one.
    pub gamma: Option<f64>,
    /// Message-loss override, when the grid swept one.
    pub loss: Option<f64>,
    /// Mean link-delay override (in ticks), when the grid swept one.
    pub delay: Option<f64>,
    /// Corruption-rate override, when the grid swept one.
    pub corruption: Option<f64>,
}

/// Outcome of one cell: the resolved parameters plus the run result (a
/// cell whose overrides are unbuildable — e.g. sweeping `n` over a
/// custom placement — reports the error instead of aborting the
/// campaign).
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// The cell parameters.
    pub cell: CellInfo,
    /// The run outcome or the error that prevented it.
    pub outcome: Result<ScenarioOutcome, SpecError>,
}

/// Compact cell identification carried into the result store.
#[derive(Debug, Clone, PartialEq)]
pub struct CellInfo {
    /// Expansion index.
    pub index: usize,
    /// Scenario name.
    pub scenario: String,
    /// Seed.
    pub seed: u64,
    /// Node count.
    pub n: usize,
    /// Coverage degree.
    pub k: usize,
    /// Step size.
    pub alpha: f64,
    /// Explicit transmission-range override, when the grid swept one.
    pub gamma: Option<f64>,
    /// Message-loss override, when the grid swept one.
    pub loss: Option<f64>,
    /// Mean link-delay override (in ticks), when the grid swept one.
    pub delay: Option<f64>,
    /// Corruption-rate override, when the grid swept one.
    pub corruption: Option<f64>,
}

impl CampaignSpec {
    /// A campaign running `scenario` once per seed with no overrides.
    pub fn over_seeds(scenario: ScenarioSpec, seeds: impl IntoIterator<Item = u64>) -> Self {
        CampaignSpec {
            name: scenario.name.clone(),
            scenario,
            grid: ParamGrid {
                seeds: seeds.into_iter().collect(),
                ..ParamGrid::default()
            },
            checkpoint_every: 0,
        }
    }

    /// Unrolls the grid into cells, in deterministic order. With the
    /// default cross product: `n` (outer) × `k` × `alpha` × `gamma` ×
    /// `seeds` (inner); with `zip = true`: one tuple per position of the
    /// zipped axes (outer) × `seeds` (inner); with a `zip = [...]`
    /// group: the fused group replaces its first member's slot in the
    /// cross product, the other axes cross as usual.
    ///
    /// # Errors
    ///
    /// Fails only when an override cannot be expressed at all — a
    /// node-count sweep over a custom placement, zipped axes of unequal
    /// lengths, or a zip group naming an unknown or empty axis;
    /// per-cell *run* failures are reported in the cell's
    /// [`CellResult`] instead.
    pub fn expand(&self) -> Result<Vec<CampaignCell>, SpecError> {
        let seeds: &[u64] = if self.grid.seeds.is_empty() {
            &[0]
        } else {
            &self.grid.seeds
        };
        let base_n = self.scenario.placement.node_count();
        let tuples = match &self.grid.zip {
            ZipSpec::None => self.crossed_tuples(base_n),
            ZipSpec::All => self.zipped_tuples(base_n)?,
            ZipSpec::Axes(group) => self.grouped_tuples(base_n, group)?,
        };
        if (!self.grid.loss.is_empty()
            || !self.grid.delay.is_empty()
            || !self.grid.corruption.is_empty())
            && self.scenario.laacad.faults.is_none()
        {
            return Err(SpecError::Build(
                "the grid sweeps `loss`/`delay`/`corruption` but the scenario has \
                 no [faults] section to override"
                    .into(),
            ));
        }
        let mut cells = Vec::with_capacity(tuples.len() * seeds.len());
        for (n, k, alpha, gamma, loss, delay, corruption) in tuples {
            for &seed in seeds {
                let mut scenario = self.scenario.clone();
                if n != base_n {
                    scenario.placement = scenario.placement.with_node_count(n)?;
                }
                scenario.laacad.k = k;
                scenario.laacad.alpha = alpha;
                if let Some(g) = gamma {
                    scenario.laacad.gamma = Some(g);
                }
                if loss.is_some() || delay.is_some() || corruption.is_some() {
                    let faults = scenario
                        .laacad
                        .faults
                        .as_mut()
                        .expect("checked above: fault axes require a [faults] section");
                    if let Some(l) = loss {
                        faults.loss = l;
                    }
                    if let Some(d) = delay {
                        faults.delay = if d == 0.0 {
                            DelaySpec::None
                        } else {
                            DelaySpec::Exp { mean: d }
                        };
                    }
                    if let Some(c) = corruption {
                        faults.corruption_rate = c;
                    }
                }
                cells.push(CampaignCell {
                    index: cells.len(),
                    scenario,
                    seed,
                    n,
                    k,
                    alpha,
                    gamma,
                    loss,
                    delay,
                    corruption,
                });
            }
        }
        Ok(cells)
    }

    /// The cross product of the non-empty parameter axes (defaults fill
    /// in for empty ones).
    fn crossed_tuples(&self, base_n: usize) -> Vec<ParamTuple> {
        let ns: Vec<usize> = if self.grid.n.is_empty() {
            vec![base_n]
        } else {
            self.grid.n.clone()
        };
        let ks: Vec<usize> = if self.grid.k.is_empty() {
            vec![self.scenario.laacad.k]
        } else {
            self.grid.k.clone()
        };
        let alphas: Vec<f64> = if self.grid.alpha.is_empty() {
            vec![self.scenario.laacad.alpha]
        } else {
            self.grid.alpha.clone()
        };
        let gammas: Vec<Option<f64>> = if self.grid.gamma.is_empty() {
            vec![None]
        } else {
            self.grid.gamma.iter().map(|&g| Some(g)).collect()
        };
        let losses: Vec<Option<f64>> = if self.grid.loss.is_empty() {
            vec![None]
        } else {
            self.grid.loss.iter().map(|&x| Some(x)).collect()
        };
        let delays: Vec<Option<f64>> = if self.grid.delay.is_empty() {
            vec![None]
        } else {
            self.grid.delay.iter().map(|&x| Some(x)).collect()
        };
        let corruptions: Vec<Option<f64>> = if self.grid.corruption.is_empty() {
            vec![None]
        } else {
            self.grid.corruption.iter().map(|&x| Some(x)).collect()
        };
        let mut tuples = Vec::new();
        for &n in &ns {
            for &k in &ks {
                for &alpha in &alphas {
                    for &gamma in &gammas {
                        for &loss in &losses {
                            for &delay in &delays {
                                for &corruption in &corruptions {
                                    tuples.push((n, k, alpha, gamma, loss, delay, corruption));
                                }
                            }
                        }
                    }
                }
            }
        }
        tuples
    }

    /// Position-by-position tuples of the non-empty parameter axes.
    ///
    /// # Errors
    ///
    /// Fails when the non-empty axes disagree on length.
    fn zipped_tuples(&self, base_n: usize) -> Result<Vec<ParamTuple>, SpecError> {
        let lengths: Vec<(&str, usize)> = [
            ("n", self.grid.n.len()),
            ("k", self.grid.k.len()),
            ("alpha", self.grid.alpha.len()),
            ("gamma", self.grid.gamma.len()),
            ("loss", self.grid.loss.len()),
            ("delay", self.grid.delay.len()),
            ("corruption", self.grid.corruption.len()),
        ]
        .into_iter()
        .filter(|&(_, len)| len > 0)
        .collect();
        let Some(&(_, len)) = lengths.first() else {
            // No parameter axes at all: one default tuple.
            return Ok(vec![(
                base_n,
                self.scenario.laacad.k,
                self.scenario.laacad.alpha,
                None,
                None,
                None,
                None,
            )]);
        };
        if let Some(&(axis, other)) = lengths.iter().find(|&&(_, l)| l != len) {
            return Err(SpecError::Build(format!(
                "zip grid axes disagree on length: `{}` has {} entries but `{axis}` has {other}",
                lengths[0].0, len
            )));
        }
        Ok((0..len)
            .map(|i| {
                (
                    self.grid.n.get(i).copied().unwrap_or(base_n),
                    self.grid
                        .k
                        .get(i)
                        .copied()
                        .unwrap_or(self.scenario.laacad.k),
                    self.grid
                        .alpha
                        .get(i)
                        .copied()
                        .unwrap_or(self.scenario.laacad.alpha),
                    self.grid.gamma.get(i).copied(),
                    self.grid.loss.get(i).copied(),
                    self.grid.delay.get(i).copied(),
                    self.grid.corruption.get(i).copied(),
                )
            })
            .collect())
    }

    /// Tuples for a **mixed** grid: the axes named in `group` fuse into
    /// one position-by-position slot — placed where the group's first
    /// axis sits in the canonical `n`, `k`, `alpha`, `gamma` order —
    /// and every other non-empty axis crosses against it.
    ///
    /// # Errors
    ///
    /// Fails on unknown or duplicate axis names, a zip axis with no
    /// values, and group members of unequal lengths.
    fn grouped_tuples(
        &self,
        base_n: usize,
        group: &[String],
    ) -> Result<Vec<ParamTuple>, SpecError> {
        const AXES: [&str; 7] = ["n", "k", "alpha", "gamma", "loss", "delay", "corruption"];
        if group.is_empty() {
            // An empty group zips nothing: plain cross product.
            return Ok(self.crossed_tuples(base_n));
        }
        for (i, axis) in group.iter().enumerate() {
            if !AXES.contains(&axis.as_str()) {
                return Err(SpecError::Build(format!(
                    "unknown zip axis `{axis}` (expected one of n, k, alpha, gamma, \
                     loss, delay, corruption)"
                )));
            }
            if group[..i].contains(axis) {
                return Err(SpecError::Build(format!("duplicate zip axis `{axis}`")));
            }
        }
        let axis_len = |name: &str| match name {
            "n" => self.grid.n.len(),
            "k" => self.grid.k.len(),
            "alpha" => self.grid.alpha.len(),
            "gamma" => self.grid.gamma.len(),
            "loss" => self.grid.loss.len(),
            "delay" => self.grid.delay.len(),
            _ => self.grid.corruption.len(),
        };
        let group_len = axis_len(&group[0]);
        for axis in group {
            let len = axis_len(axis);
            if len == 0 {
                return Err(SpecError::Build(format!(
                    "zip axis `{axis}` has no values to pair"
                )));
            }
            if len != group_len {
                return Err(SpecError::Build(format!(
                    "zip grid axes disagree on length: `{}` has {group_len} entries \
                     but `{axis}` has {len}",
                    group[0]
                )));
            }
        }
        let ns: Vec<usize> = if self.grid.n.is_empty() {
            vec![base_n]
        } else {
            self.grid.n.clone()
        };
        let ks: Vec<usize> = if self.grid.k.is_empty() {
            vec![self.scenario.laacad.k]
        } else {
            self.grid.k.clone()
        };
        let alphas: Vec<f64> = if self.grid.alpha.is_empty() {
            vec![self.scenario.laacad.alpha]
        } else {
            self.grid.alpha.clone()
        };
        let gammas: Vec<Option<f64>> = if self.grid.gamma.is_empty() {
            vec![None]
        } else {
            self.grid.gamma.iter().map(|&g| Some(g)).collect()
        };
        let losses: Vec<Option<f64>> = if self.grid.loss.is_empty() {
            vec![None]
        } else {
            self.grid.loss.iter().map(|&x| Some(x)).collect()
        };
        let delays: Vec<Option<f64>> = if self.grid.delay.is_empty() {
            vec![None]
        } else {
            self.grid.delay.iter().map(|&x| Some(x)).collect()
        };
        let corruptions: Vec<Option<f64>> = if self.grid.corruption.is_empty() {
            vec![None]
        } else {
            self.grid.corruption.iter().map(|&x| Some(x)).collect()
        };
        #[derive(Clone, Copy)]
        enum Slot {
            Group,
            N,
            K,
            Alpha,
            Gamma,
            Loss,
            Delay,
            Corruption,
        }
        let in_group = |name: &str| group.iter().any(|a| a == name);
        let mut slots: Vec<(Slot, usize)> = Vec::new();
        for axis in AXES {
            if in_group(axis) {
                if !slots.iter().any(|&(s, _)| matches!(s, Slot::Group)) {
                    slots.push((Slot::Group, group_len));
                }
            } else {
                slots.push(match axis {
                    "n" => (Slot::N, ns.len()),
                    "k" => (Slot::K, ks.len()),
                    "alpha" => (Slot::Alpha, alphas.len()),
                    "gamma" => (Slot::Gamma, gammas.len()),
                    "loss" => (Slot::Loss, losses.len()),
                    "delay" => (Slot::Delay, delays.len()),
                    _ => (Slot::Corruption, corruptions.len()),
                });
            }
        }
        // Row-major odometer over the slots (last slot fastest), so a
        // group behaves exactly like one ordinary axis at its position.
        let total: usize = slots.iter().map(|&(_, len)| len).product();
        let mut tuples = Vec::with_capacity(total);
        let mut picks = vec![0usize; slots.len()];
        for mut index in 0..total {
            for (s, &(_, len)) in slots.iter().enumerate().rev() {
                picks[s] = index % len;
                index /= len;
            }
            let (mut n, mut k, mut alpha, mut gamma, mut loss, mut delay, mut corruption) = (
                ns[0],
                ks[0],
                alphas[0],
                gammas[0],
                losses[0],
                delays[0],
                corruptions[0],
            );
            for (s, &(slot, _)) in slots.iter().enumerate() {
                let p = picks[s];
                match slot {
                    Slot::Group => {
                        if in_group("n") {
                            n = ns[p];
                        }
                        if in_group("k") {
                            k = ks[p];
                        }
                        if in_group("alpha") {
                            alpha = alphas[p];
                        }
                        if in_group("gamma") {
                            gamma = gammas[p];
                        }
                        if in_group("loss") {
                            loss = losses[p];
                        }
                        if in_group("delay") {
                            delay = delays[p];
                        }
                        if in_group("corruption") {
                            corruption = corruptions[p];
                        }
                    }
                    Slot::N => n = ns[p],
                    Slot::K => k = ks[p],
                    Slot::Alpha => alpha = alphas[p],
                    Slot::Gamma => gamma = gammas[p],
                    Slot::Loss => loss = losses[p],
                    Slot::Delay => delay = delays[p],
                    Slot::Corruption => corruption = corruptions[p],
                }
            }
            tuples.push((n, k, alpha, gamma, loss, delay, corruption));
        }
        Ok(tuples)
    }

    /// Decodes a campaign document (`name`, `[scenario]`, `[grid]`).
    pub fn from_value(v: &Value) -> Result<Self, SpecError> {
        let scenario = ScenarioSpec::from_value(
            v.get("scenario")
                .ok_or_else(|| DecodeError::new("campaign.scenario", "missing required field"))?,
        )?;
        let grid = match v.get("grid") {
            None => ParamGrid::default(),
            Some(g) => ParamGrid::from_value(g, "campaign.grid")?,
        };
        let name = match decode::opt_str(v, "name", "campaign")? {
            Some(n) => n,
            None => scenario.name.clone(),
        };
        let checkpoint_every = decode::opt_usize(v, "checkpoint_every", "campaign")?.unwrap_or(0);
        Ok(CampaignSpec {
            name,
            scenario,
            grid,
            checkpoint_every,
        })
    }

    /// Encodes the campaign as a [`Value`] tree.
    pub fn to_value(&self) -> Value {
        let mut t = Value::table();
        t.insert("name", Value::Str(self.name.clone()));
        if self.checkpoint_every > 0 {
            t.insert("checkpoint_every", encode::int(self.checkpoint_every));
        }
        t.insert("scenario", self.scenario.to_value());
        t.insert("grid", self.grid.to_value());
        t
    }

    /// Parses a TOML campaign document.
    pub fn from_toml(text: &str) -> Result<Self, SpecError> {
        let v = crate::toml::parse(text).map_err(SpecError::Toml)?;
        Self::from_value(&v)
    }

    /// Serializes as TOML.
    pub fn to_toml(&self) -> String {
        crate::toml::to_string(&self.to_value())
    }

    /// Loads a campaign — or a bare scenario, promoted to a one-cell
    /// campaign — from a TOML/JSON file.
    pub fn from_path(path: &std::path::Path) -> Result<Self, SpecError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| SpecError::Build(format!("cannot read {}: {e}", path.display())))?;
        let v = match path.extension().and_then(|e| e.to_str()) {
            Some("json") => crate::json::parse(&text).map_err(SpecError::Json)?,
            _ => crate::toml::parse(&text).map_err(SpecError::Toml)?,
        };
        if v.get("scenario").is_some() {
            Self::from_value(&v)
        } else {
            let scenario = ScenarioSpec::from_value(&v)?;
            Ok(CampaignSpec {
                name: scenario.name.clone(),
                scenario,
                grid: ParamGrid::default(),
                checkpoint_every: 0,
            })
        }
    }
}

/// Expands and executes a campaign across all cores.
///
/// Results come back in expansion order (not completion order), so two
/// runs of the same campaign produce identical result sequences.
///
/// # Errors
///
/// Fails only when the grid itself cannot be expanded; individual cell
/// failures are embedded in the returned [`CellResult`]s.
pub fn run_campaign(campaign: &CampaignSpec) -> Result<Vec<CellResult>, SpecError> {
    let cells = campaign.expand()?;
    Ok(parallel_map(cells, run_cell))
}

fn cell_info(cell: &CampaignCell) -> CellInfo {
    CellInfo {
        index: cell.index,
        scenario: cell.scenario.name.clone(),
        seed: cell.seed,
        n: cell.n,
        k: cell.k,
        alpha: cell.alpha,
        gamma: cell.gamma,
        loss: cell.loss,
        delay: cell.delay,
        corruption: cell.corruption,
    }
}

fn run_cell(cell: CampaignCell) -> CellResult {
    let info = cell_info(&cell);
    CellResult {
        cell: info,
        outcome: run_scenario(&cell.scenario, cell.seed),
    }
}

/// [`run_cell`] with an optional [`SessionTelemetry`] recorder riding
/// along. Telemetry is observational only, so the [`CellResult`] is
/// identical either way.
fn run_cell_recorded(cell: CampaignCell, record: bool) -> (CellResult, Option<SessionTelemetry>) {
    if !record {
        return (run_cell(cell), None);
    }
    let info = cell_info(&cell);
    match run_scenario_recorded(&cell.scenario, cell.seed, Box::new(SessionTelemetry::new())) {
        Ok((outcome, recorder)) => {
            let telemetry = recorder
                .as_any()
                .downcast_ref::<SessionTelemetry>()
                .cloned();
            (
                CellResult {
                    cell: info,
                    outcome: Ok(outcome),
                },
                telemetry,
            )
        }
        Err(e) => (
            CellResult {
                cell: info,
                outcome: Err(e),
            },
            None,
        ),
    }
}

/// [`run_cell_recorded`] with campaign-level checkpointing: writes the
/// cell's `laacad-checkpoint/1` file beside the result store every
/// `every` rounds, **resumes** from an existing file (a killed campaign
/// rerun), and removes the file once the cell completes — so a resumed
/// campaign produces results bit-identical to an uninterrupted one.
/// `[faults]` cells run on the asynchronous executor, which has no
/// snapshot support, and fall back to the plain runner.
fn run_cell_checkpointed(
    cell: CampaignCell,
    record: bool,
    every: usize,
    dir: &Path,
    name: &str,
) -> (CellResult, Option<SessionTelemetry>) {
    if every == 0 || cell.scenario.laacad.faults.is_some() {
        // `[faults]` cells run on the asynchronous executor, which has
        // no snapshot support: a requested checkpoint cadence is
        // silently impossible, so say so in the outcome instead of
        // letting the operator believe the cell is resumable.
        let bypassed = every > 0;
        let (mut result, telemetry) = run_cell_recorded(cell, record);
        if bypassed {
            if let Ok(outcome) = result.outcome.as_mut() {
                outcome.warnings.push(format!(
                    "checkpoint_every = {every} ignored: asynchronous `[faults]` \
                     cells do not support checkpointing and always run start-to-finish"
                ));
            }
        }
        return (result, telemetry);
    }
    let info = cell_info(&cell);
    let path = dir.join(format!("{name}.cell{}.checkpoint", cell.index));
    // An unreadable or corrupt checkpoint file must not wedge the
    // campaign — start the cell over instead of failing it.
    let resume = std::fs::read(&path)
        .ok()
        .and_then(|bytes| ScenarioCheckpoint::from_bytes(&bytes).ok());
    let mut sink = |ckpt: &ScenarioCheckpoint| {
        std::fs::write(&path, ckpt.to_bytes()).map_err(|e| SpecError::Io(e.to_string()))
    };
    let recorder: Option<Box<dyn Recorder>> =
        record.then(|| Box::new(SessionTelemetry::new()) as Box<dyn Recorder>);
    match run_checkpointed_impl(
        &cell.scenario,
        cell.seed,
        every,
        resume.as_ref(),
        &mut sink,
        recorder,
    ) {
        Ok((outcome, recorder)) => {
            let _ = std::fs::remove_file(&path);
            let telemetry =
                recorder.and_then(|r| r.as_any().downcast_ref::<SessionTelemetry>().cloned());
            (
                CellResult {
                    cell: info,
                    outcome: Ok(outcome),
                },
                telemetry,
            )
        }
        Err(e) => (
            CellResult {
                cell: info,
                outcome: Err(e),
            },
            None,
        ),
    }
}

/// Writes one cell's telemetry pair beside the campaign result files.
fn write_cell_telemetry(
    dir: &Path,
    name: &str,
    index: usize,
    telemetry: &SessionTelemetry,
) -> std::io::Result<()> {
    std::fs::write(
        dir.join(format!("{name}.cell{index}.telemetry.jsonl")),
        telemetry.jsonl.finish(),
    )?;
    std::fs::write(
        dir.join(format!("{name}.cell{index}.trace.json")),
        telemetry.trace.finish(),
    )
}

/// [`run_campaign`] with **streaming result persistence**: every cell's
/// JSONL line and CSV row are appended to `store`'s files — and flushed —
/// the moment the cell (and every cell before it, to keep expansion
/// order) completes, instead of buffering the whole grid in memory until
/// the end. A campaign killed halfway leaves every finished row on disk;
/// a completed one produces files **byte-identical** to
/// [`ResultStore::write`] on the same results (pinned by the
/// `streaming` integration test). Returns the two file paths and the
/// full in-memory results for downstream rendering.
///
/// # Errors
///
/// Fails when the grid cannot be expanded ([`SpecError::Build`]) or a
/// file operation fails ([`SpecError::Io`]); per-cell *run* failures are
/// embedded in the returned [`CellResult`]s as with [`run_campaign`].
pub fn run_campaign_streamed(
    campaign: &CampaignSpec,
    store: &ResultStore,
) -> Result<(PathBuf, PathBuf, Vec<CellResult>), SpecError> {
    run_campaign_observed(campaign, store, CampaignRunOptions::default())
}

/// Live progress of an observed campaign run, handed to the
/// [`CampaignRunOptions::progress`] callback after every completed cell
/// (cells complete in expansion order).
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignProgress {
    /// Cells finished so far (≥ 1 whenever the callback fires).
    pub completed: usize,
    /// Total cells in the expansion.
    pub total: usize,
    /// Wall-clock seconds since the campaign started executing.
    pub elapsed_secs: f64,
    /// Throughput so far, in cells per minute.
    pub cells_per_minute: f64,
    /// Estimated seconds until the last cell lands (`None` until any
    /// throughput has been observed).
    pub eta_secs: Option<f64>,
}

/// Options for [`run_campaign_observed`].
#[derive(Default)]
pub struct CampaignRunOptions<'a> {
    /// Record telemetry for **every** cell. Cells whose scenario sets
    /// `laacad.telemetry = true` are recorded regardless.
    pub telemetry: bool,
    /// Called after each completed cell with the live progress.
    pub progress: Option<&'a mut dyn FnMut(&CampaignProgress)>,
}

/// [`run_campaign_streamed`] with **observability**: per-cell telemetry
/// files and a live progress callback.
///
/// Every cell whose scenario enables `laacad.telemetry` — or every
/// cell, with [`CampaignRunOptions::telemetry`] — runs with a
/// [`SessionTelemetry`] recorder installed and leaves two files beside
/// the streamed results in `store`:
///
/// * `<name>.cell<index>.telemetry.jsonl` — the deterministic work
///   metrics (counter deltas per round, no timestamps), byte-stable
///   across reruns and worker counts;
/// * `<name>.cell<index>.trace.json` — a Chrome trace-event file of
///   wall-clock stage spans (open in Perfetto or `chrome://tracing`).
///
/// Telemetry never feeds back into the algorithm, so the JSONL/CSV
/// result files stay byte-identical to a telemetry-free run (pinned by
/// the `telemetry_campaign` integration test).
///
/// # Errors
///
/// As [`run_campaign_streamed`]: grid expansion
/// ([`SpecError::Build`]) or file I/O ([`SpecError::Io`]); per-cell
/// run failures ride in the returned [`CellResult`]s.
pub fn run_campaign_observed(
    campaign: &CampaignSpec,
    store: &ResultStore,
    options: CampaignRunOptions<'_>,
) -> Result<(PathBuf, PathBuf, Vec<CellResult>), SpecError> {
    let cells = campaign.expand()?;
    let total = cells.len();
    let record_all = options.telemetry;
    let every = campaign.checkpoint_every;
    let dir = store.dir();
    let mut progress = options.progress;
    let mut files = store
        .open_stream(&campaign.name)
        .map_err(|e| SpecError::Io(e.to_string()))?;
    let started = Instant::now();
    let mut completed = 0usize;
    let mut write_err: Option<std::io::Error> = None;
    let outputs = parallel_map_visit(
        0,
        cells,
        |cell| {
            let record = record_all || cell.scenario.laacad.telemetry;
            run_cell_checkpointed(cell, record, every, dir, &campaign.name)
        },
        |_, (result, telemetry)| {
            if write_err.is_none() {
                if let Err(e) = files.append(result) {
                    write_err = Some(e);
                } else if let Some(t) = telemetry {
                    if let Err(e) =
                        write_cell_telemetry(store.dir(), &campaign.name, result.cell.index, t)
                    {
                        write_err = Some(e);
                    }
                }
            }
            completed += 1;
            if let Some(cb) = progress.as_deref_mut() {
                let elapsed_secs = started.elapsed().as_secs_f64();
                let cells_per_minute = if elapsed_secs > 0.0 {
                    completed as f64 / elapsed_secs * 60.0
                } else {
                    0.0
                };
                let eta_secs = (cells_per_minute > 0.0)
                    .then(|| (total - completed) as f64 * elapsed_secs / completed as f64);
                cb(&CampaignProgress {
                    completed,
                    total,
                    elapsed_secs,
                    cells_per_minute,
                    eta_secs,
                });
            }
        },
    );
    if let Some(e) = write_err {
        return Err(SpecError::Io(e.to_string()));
    }
    let (jsonl, csv) = files.into_paths();
    Ok((jsonl, csv, outputs.into_iter().map(|(r, _)| r).collect()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_order_is_deterministic() {
        let mut campaign = CampaignSpec::over_seeds(ScenarioSpec::uniform("grid", 10, 1), [1, 2]);
        campaign.grid.k = vec![1, 2];
        campaign.grid.n = vec![10, 20];
        let cells = campaign.expand().unwrap();
        assert_eq!(cells.len(), 8);
        let params: Vec<(usize, usize, u64)> = cells.iter().map(|c| (c.n, c.k, c.seed)).collect();
        assert_eq!(
            params,
            vec![
                (10, 1, 1),
                (10, 1, 2),
                (10, 2, 1),
                (10, 2, 2),
                (20, 1, 1),
                (20, 1, 2),
                (20, 2, 1),
                (20, 2, 2),
            ]
        );
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index, i);
            assert_eq!(c.scenario.placement.node_count(), c.n);
            assert_eq!(c.scenario.laacad.k, c.k);
        }
    }

    #[test]
    fn campaign_runs_in_parallel_and_in_order() {
        let mut spec = ScenarioSpec::uniform("par", 12, 1);
        spec.laacad.max_rounds = 40;
        let campaign = CampaignSpec::over_seeds(spec, [5, 6, 7, 8]);
        let results = run_campaign(&campaign).unwrap();
        assert_eq!(results.len(), 4);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.cell.index, i);
            assert_eq!(r.cell.seed, 5 + i as u64);
            let out = r.outcome.as_ref().unwrap();
            assert_eq!(out.seed, r.cell.seed);
            assert!(out.coverage.covered_fraction > 0.9);
        }
    }

    #[test]
    fn n_sweep_over_custom_placement_fails_cleanly() {
        let mut spec = ScenarioSpec::uniform("bad", 4, 1);
        spec.placement = crate::spec::PlacementSpec::Custom {
            points: vec![(0.2, 0.2), (0.8, 0.8), (0.2, 0.8), (0.8, 0.2)],
        };
        let mut campaign = CampaignSpec::over_seeds(spec, [1]);
        campaign.grid.n = vec![8];
        assert!(campaign.expand().is_err());
    }

    #[test]
    fn campaign_toml_round_trip() {
        let mut campaign = CampaignSpec::over_seeds(ScenarioSpec::uniform("rt", 10, 2), [3, 4]);
        campaign.grid.alpha = vec![0.5, 1.0];
        campaign.grid.gamma = vec![0.3, 0.4];
        campaign.grid.zip = ZipSpec::All;
        let text = campaign.to_toml();
        let back = CampaignSpec::from_toml(&text).unwrap();
        assert_eq!(campaign, back, "TOML:\n{text}");
    }

    #[test]
    fn gamma_axis_crosses_and_overrides() {
        let mut campaign = CampaignSpec::over_seeds(ScenarioSpec::uniform("g", 10, 1), [1]);
        campaign.grid.k = vec![1, 2];
        campaign.grid.gamma = vec![0.3, 0.5];
        let cells = campaign.expand().unwrap();
        assert_eq!(cells.len(), 4);
        let params: Vec<(usize, Option<f64>)> = cells.iter().map(|c| (c.k, c.gamma)).collect();
        assert_eq!(
            params,
            vec![
                (1, Some(0.3)),
                (1, Some(0.5)),
                (2, Some(0.3)),
                (2, Some(0.5)),
            ]
        );
        for c in &cells {
            assert_eq!(c.scenario.laacad.gamma, c.gamma, "override applied");
        }
    }

    #[test]
    fn zip_grid_pairs_axes_position_by_position() {
        let mut campaign = CampaignSpec::over_seeds(ScenarioSpec::uniform("z", 10, 1), [1, 2]);
        campaign.grid.zip = ZipSpec::All;
        campaign.grid.n = vec![10, 40, 90];
        campaign.grid.gamma = vec![0.5, 0.3, 0.2];
        let cells = campaign.expand().unwrap();
        assert_eq!(cells.len(), 6, "3 zipped tuples × 2 seeds");
        let params: Vec<(usize, Option<f64>, u64)> =
            cells.iter().map(|c| (c.n, c.gamma, c.seed)).collect();
        assert_eq!(
            params,
            vec![
                (10, Some(0.5), 1),
                (10, Some(0.5), 2),
                (40, Some(0.3), 1),
                (40, Some(0.3), 2),
                (90, Some(0.2), 1),
                (90, Some(0.2), 2),
            ]
        );
        // Unmentioned axes keep the scenario's own values.
        assert!(cells.iter().all(|c| c.k == 1));
    }

    #[test]
    fn zip_grid_rejects_unequal_axis_lengths() {
        let mut campaign = CampaignSpec::over_seeds(ScenarioSpec::uniform("bad-zip", 10, 1), [1]);
        campaign.grid.zip = ZipSpec::All;
        campaign.grid.n = vec![10, 20];
        campaign.grid.k = vec![1, 2, 3];
        let err = campaign.expand().unwrap_err();
        assert!(err.to_string().contains("zip"), "{err}");
    }

    #[test]
    fn zip_group_crosses_against_remaining_axes() {
        // (n, gamma) move together; k crosses against the fused pair.
        let mut campaign = CampaignSpec::over_seeds(ScenarioSpec::uniform("mix", 10, 1), [1, 2]);
        campaign.grid.zip = ZipSpec::Axes(vec!["n".into(), "gamma".into()]);
        campaign.grid.n = vec![40, 90];
        campaign.grid.gamma = vec![0.3, 0.2];
        campaign.grid.k = vec![1, 2];
        let cells = campaign.expand().unwrap();
        assert_eq!(cells.len(), 8, "2 fused tuples × 2 k × 2 seeds");
        let params: Vec<(usize, usize, Option<f64>, u64)> =
            cells.iter().map(|c| (c.n, c.k, c.gamma, c.seed)).collect();
        // The group sits in `n`'s slot of the canonical order, so it is
        // outermost, k next, seeds innermost.
        assert_eq!(
            params,
            vec![
                (40, 1, Some(0.3), 1),
                (40, 1, Some(0.3), 2),
                (40, 2, Some(0.3), 1),
                (40, 2, Some(0.3), 2),
                (90, 1, Some(0.2), 1),
                (90, 1, Some(0.2), 2),
                (90, 2, Some(0.2), 1),
                (90, 2, Some(0.2), 2),
            ]
        );
        for c in &cells {
            assert_eq!(c.scenario.placement.node_count(), c.n);
            assert_eq!(c.scenario.laacad.gamma, c.gamma);
        }
    }

    #[test]
    fn zip_group_takes_its_first_members_slot() {
        // Group (k, gamma): n crosses OUTSIDE the group because the
        // group occupies k's position in the canonical order.
        let mut campaign = CampaignSpec::over_seeds(ScenarioSpec::uniform("slot", 10, 1), [7]);
        campaign.grid.zip = ZipSpec::Axes(vec!["k".into(), "gamma".into()]);
        campaign.grid.k = vec![1, 2];
        campaign.grid.gamma = vec![0.4, 0.3];
        campaign.grid.alpha = vec![0.5, 0.9];
        let cells = campaign.expand().unwrap();
        let params: Vec<(usize, f64, Option<f64>)> =
            cells.iter().map(|c| (c.k, c.alpha, c.gamma)).collect();
        assert_eq!(
            params,
            vec![
                (1, 0.5, Some(0.4)),
                (1, 0.9, Some(0.4)),
                (2, 0.5, Some(0.3)),
                (2, 0.9, Some(0.3)),
            ]
        );
    }

    #[test]
    fn zip_group_toml_round_trips() {
        let mut campaign = CampaignSpec::over_seeds(ScenarioSpec::uniform("rt-mix", 10, 1), [1]);
        campaign.grid.zip = ZipSpec::Axes(vec!["n".into(), "gamma".into()]);
        campaign.grid.n = vec![40, 90];
        campaign.grid.gamma = vec![0.3, 0.2];
        campaign.grid.k = vec![1, 2];
        let text = campaign.to_toml();
        let back = CampaignSpec::from_toml(&text).unwrap();
        assert_eq!(campaign, back, "TOML:\n{text}");
    }

    #[test]
    fn corruption_axis_crosses_and_overrides() {
        let mut spec = ScenarioSpec::uniform("byz", 10, 1);
        spec.laacad.faults = Some(crate::spec::FaultSpec::default());
        let mut campaign = CampaignSpec::over_seeds(spec, [1]);
        campaign.grid.loss = vec![0.0, 0.1];
        campaign.grid.corruption = vec![0.0, 0.2];
        let cells = campaign.expand().unwrap();
        assert_eq!(cells.len(), 4, "2 loss × 2 corruption");
        let params: Vec<(Option<f64>, Option<f64>)> =
            cells.iter().map(|c| (c.loss, c.corruption)).collect();
        assert_eq!(
            params,
            vec![
                (Some(0.0), Some(0.0)),
                (Some(0.0), Some(0.2)),
                (Some(0.1), Some(0.0)),
                (Some(0.1), Some(0.2)),
            ]
        );
        for c in &cells {
            let faults = c.scenario.laacad.faults.as_ref().unwrap();
            assert_eq!(Some(faults.corruption_rate), c.corruption);
            assert_eq!(Some(faults.loss), c.loss);
        }
    }

    #[test]
    fn corruption_axis_requires_faults_section() {
        let mut campaign = CampaignSpec::over_seeds(ScenarioSpec::uniform("no-f", 10, 1), [1]);
        campaign.grid.corruption = vec![0.1];
        let err = campaign.expand().unwrap_err();
        assert!(err.to_string().contains("[faults]"), "{err}");
    }

    #[test]
    fn corruption_axis_toml_round_trips() {
        let mut spec = ScenarioSpec::uniform("rt-byz", 10, 1);
        spec.laacad.faults = Some(crate::spec::FaultSpec::default());
        let mut campaign = CampaignSpec::over_seeds(spec, [1, 2]);
        campaign.grid.corruption = vec![0.0, 0.1, 0.3];
        let text = campaign.to_toml();
        let back = CampaignSpec::from_toml(&text).unwrap();
        assert_eq!(campaign, back, "TOML:\n{text}");
    }

    #[test]
    fn checkpoint_bypass_for_faults_cells_is_reported() {
        let mut spec = ScenarioSpec::uniform("ckpt-async", 10, 1);
        spec.laacad.max_rounds = 60;
        spec.laacad.faults = Some(crate::spec::FaultSpec::default());
        let campaign = CampaignSpec::over_seeds(spec, [3]);
        let cells = campaign.expand().unwrap();
        let dir = std::env::temp_dir();

        // A requested cadence that cannot apply is surfaced as a warning…
        let (result, _) = run_cell_checkpointed(cells[0].clone(), false, 5, &dir, "ckpt-async");
        let outcome = result.outcome.expect("cell runs");
        assert!(
            outcome
                .warnings
                .iter()
                .any(|w| w.contains("checkpoint_every = 5 ignored")),
            "missing bypass warning: {:?}",
            outcome.warnings
        );

        // …while an unrequested one stays silent.
        let (result, _) = run_cell_checkpointed(cells[0].clone(), false, 0, &dir, "ckpt-async");
        let outcome = result.outcome.expect("cell runs");
        assert!(
            !outcome.warnings.iter().any(|w| w.contains("checkpoint")),
            "spurious warning: {:?}",
            outcome.warnings
        );
    }

    #[test]
    fn zip_group_validates_axis_names_and_lengths() {
        let base = || CampaignSpec::over_seeds(ScenarioSpec::uniform("bad-mix", 10, 1), [1]);

        let mut campaign = base();
        campaign.grid.zip = ZipSpec::Axes(vec!["rho".into()]);
        let err = campaign.expand().unwrap_err();
        assert!(err.to_string().contains("unknown zip axis"), "{err}");

        let mut campaign = base();
        campaign.grid.zip = ZipSpec::Axes(vec!["n".into(), "n".into()]);
        campaign.grid.n = vec![10, 20];
        let err = campaign.expand().unwrap_err();
        assert!(err.to_string().contains("duplicate"), "{err}");

        let mut campaign = base();
        campaign.grid.zip = ZipSpec::Axes(vec!["n".into(), "gamma".into()]);
        campaign.grid.n = vec![10, 20];
        let err = campaign.expand().unwrap_err();
        assert!(err.to_string().contains("no values"), "{err}");

        let mut campaign = base();
        campaign.grid.zip = ZipSpec::Axes(vec!["n".into(), "gamma".into()]);
        campaign.grid.n = vec![10, 20];
        campaign.grid.gamma = vec![0.3];
        let err = campaign.expand().unwrap_err();
        assert!(err.to_string().contains("disagree on length"), "{err}");
    }
}
