//! Campaigns: seed × parameter grids over a scenario, run in parallel.
//!
//! A [`CampaignSpec`] pairs one [`ScenarioSpec`] with a [`ParamGrid`]
//! sweeping seeds and (optionally) `n`, `k`, `α` and `γ` — either as the
//! full cross product (the default) or zipped position-by-position
//! (`zip = true`, for sweeps whose axes move together, e.g. `n` with a
//! matched `γ`). [`expand`] unrolls the grid into an ordered list of
//! [`CampaignCell`]s — the order is a pure function of the spec, which
//! is what makes campaign reruns byte-identical — and [`run_campaign`]
//! executes the cells across all cores via [`crate::exec::parallel_map`].
//!
//! [`expand`]: CampaignSpec::expand

use crate::engine::{run_scenario, ScenarioOutcome};
use crate::exec::parallel_map;
use crate::results::ResultStore;
use crate::spec::{ScenarioSpec, SpecError};
use crate::value::{decode, encode, DecodeError, Value};
use laacad_exec::parallel_map_visit;
use std::path::PathBuf;

/// The sweep axes. Empty vectors mean "use the scenario's own value".
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ParamGrid {
    /// Seeds to run (one cell per seed per parameter combination).
    /// Empty means the single seed `0`.
    pub seeds: Vec<u64>,
    /// Node-count overrides.
    pub n: Vec<usize>,
    /// Coverage-degree overrides.
    pub k: Vec<usize>,
    /// Step-size overrides.
    pub alpha: Vec<f64>,
    /// Transmission-range overrides (an explicit `γ` per cell; the
    /// scenario's own value — or the derived recommendation — applies
    /// where empty).
    pub gamma: Vec<f64>,
    /// `false` (default): sweep the full cross product of the non-empty
    /// axes. `true`: zip the non-empty parameter axes position by
    /// position (they must share one length); seeds still cross.
    pub zip: bool,
}

impl ParamGrid {
    /// A grid running the scenario as-is over `count` seeds starting at
    /// `start`.
    pub fn seed_range(start: u64, count: usize) -> Self {
        ParamGrid {
            seeds: (0..count as u64).map(|i| start + i).collect(),
            ..ParamGrid::default()
        }
    }

    fn from_value(v: &Value, path: &str) -> Result<Self, SpecError> {
        let list_u64 = |key: &str| -> Result<Vec<u64>, SpecError> {
            match v.get(key) {
                None => Ok(Vec::new()),
                Some(a) => {
                    let p = format!("{path}.{key}");
                    a.as_array()
                        .ok_or_else(|| SpecError::from(DecodeError::new(&p, "expected array")))?
                        .iter()
                        .enumerate()
                        .map(|(i, x)| {
                            decode::to_usize(x, &format!("{p}[{i}]"))
                                .map(|u| u as u64)
                                .map_err(SpecError::from)
                        })
                        .collect()
                }
            }
        };
        let list_usize = |key: &str| -> Result<Vec<usize>, SpecError> {
            list_u64(key).map(|xs| xs.into_iter().map(|x| x as usize).collect())
        };
        let list_f64 = |key: &str| -> Result<Vec<f64>, SpecError> {
            match v.get(key) {
                None => Ok(Vec::new()),
                Some(a) => {
                    let p = format!("{path}.{key}");
                    a.as_array()
                        .ok_or_else(|| SpecError::from(DecodeError::new(&p, "expected array")))?
                        .iter()
                        .enumerate()
                        .map(|(i, x)| {
                            x.as_f64().ok_or_else(|| {
                                SpecError::from(DecodeError::new(
                                    format!("{p}[{i}]"),
                                    "expected number",
                                ))
                            })
                        })
                        .collect()
                }
            }
        };
        let mut seeds = list_u64("seeds")?;
        if seeds.is_empty() {
            if let (Some(start), Some(count)) = (
                decode::opt_usize(v, "seed_start", path)?,
                decode::opt_usize(v, "seed_count", path)?,
            ) {
                seeds = (0..count as u64).map(|i| start as u64 + i).collect();
            }
        }
        Ok(ParamGrid {
            seeds,
            n: list_usize("n")?,
            k: list_usize("k")?,
            alpha: list_f64("alpha")?,
            gamma: list_f64("gamma")?,
            zip: decode::opt_bool(v, "zip", path)?.unwrap_or(false),
        })
    }

    fn to_value(&self) -> Value {
        let mut t = Value::table();
        if !self.seeds.is_empty() {
            t.insert(
                "seeds",
                Value::Array(self.seeds.iter().map(|&s| Value::Int(s as i64)).collect()),
            );
        }
        if !self.n.is_empty() {
            t.insert(
                "n",
                Value::Array(self.n.iter().map(|&x| encode::int(x)).collect()),
            );
        }
        if !self.k.is_empty() {
            t.insert(
                "k",
                Value::Array(self.k.iter().map(|&x| encode::int(x)).collect()),
            );
        }
        if !self.alpha.is_empty() {
            t.insert(
                "alpha",
                Value::Array(self.alpha.iter().map(|&x| Value::Float(x)).collect()),
            );
        }
        if !self.gamma.is_empty() {
            t.insert(
                "gamma",
                Value::Array(self.gamma.iter().map(|&x| Value::Float(x)).collect()),
            );
        }
        if self.zip {
            t.insert("zip", Value::Bool(true));
        }
        t
    }
}

/// One resolved parameter tuple of the sweep: `(n, k, α, γ override)`.
type ParamTuple = (usize, usize, f64, Option<f64>);

/// A scenario plus the grid to sweep it over.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Campaign name (result files are named after it).
    pub name: String,
    /// The scenario template.
    pub scenario: ScenarioSpec,
    /// The sweep.
    pub grid: ParamGrid,
}

/// One fully resolved unit of campaign work.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignCell {
    /// Position in the expansion order (also the JSONL line index).
    pub index: usize,
    /// The scenario with all overrides applied.
    pub scenario: ScenarioSpec,
    /// Seed for this cell.
    pub seed: u64,
    /// Effective node count.
    pub n: usize,
    /// Effective coverage degree.
    pub k: usize,
    /// Effective step size.
    pub alpha: f64,
    /// Explicit transmission-range override, when the grid swept one.
    pub gamma: Option<f64>,
}

/// Outcome of one cell: the resolved parameters plus the run result (a
/// cell whose overrides are unbuildable — e.g. sweeping `n` over a
/// custom placement — reports the error instead of aborting the
/// campaign).
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// The cell parameters.
    pub cell: CellInfo,
    /// The run outcome or the error that prevented it.
    pub outcome: Result<ScenarioOutcome, SpecError>,
}

/// Compact cell identification carried into the result store.
#[derive(Debug, Clone, PartialEq)]
pub struct CellInfo {
    /// Expansion index.
    pub index: usize,
    /// Scenario name.
    pub scenario: String,
    /// Seed.
    pub seed: u64,
    /// Node count.
    pub n: usize,
    /// Coverage degree.
    pub k: usize,
    /// Step size.
    pub alpha: f64,
    /// Explicit transmission-range override, when the grid swept one.
    pub gamma: Option<f64>,
}

impl CampaignSpec {
    /// A campaign running `scenario` once per seed with no overrides.
    pub fn over_seeds(scenario: ScenarioSpec, seeds: impl IntoIterator<Item = u64>) -> Self {
        CampaignSpec {
            name: scenario.name.clone(),
            scenario,
            grid: ParamGrid {
                seeds: seeds.into_iter().collect(),
                ..ParamGrid::default()
            },
        }
    }

    /// Unrolls the grid into cells, in deterministic order. With the
    /// default cross product: `n` (outer) × `k` × `alpha` × `gamma` ×
    /// `seeds` (inner); with `zip = true`: one tuple per position of the
    /// zipped axes (outer) × `seeds` (inner).
    ///
    /// # Errors
    ///
    /// Fails only when an override cannot be expressed at all — a
    /// node-count sweep over a custom placement, or zipped axes of
    /// unequal lengths; per-cell *run* failures are reported in the
    /// cell's [`CellResult`] instead.
    pub fn expand(&self) -> Result<Vec<CampaignCell>, SpecError> {
        let seeds: &[u64] = if self.grid.seeds.is_empty() {
            &[0]
        } else {
            &self.grid.seeds
        };
        let base_n = self.scenario.placement.node_count();
        let tuples = if self.grid.zip {
            self.zipped_tuples(base_n)?
        } else {
            self.crossed_tuples(base_n)
        };
        let mut cells = Vec::with_capacity(tuples.len() * seeds.len());
        for (n, k, alpha, gamma) in tuples {
            for &seed in seeds {
                let mut scenario = self.scenario.clone();
                if n != base_n {
                    scenario.placement = scenario.placement.with_node_count(n)?;
                }
                scenario.laacad.k = k;
                scenario.laacad.alpha = alpha;
                if let Some(g) = gamma {
                    scenario.laacad.gamma = Some(g);
                }
                cells.push(CampaignCell {
                    index: cells.len(),
                    scenario,
                    seed,
                    n,
                    k,
                    alpha,
                    gamma,
                });
            }
        }
        Ok(cells)
    }

    /// The cross product of the non-empty parameter axes (defaults fill
    /// in for empty ones).
    fn crossed_tuples(&self, base_n: usize) -> Vec<ParamTuple> {
        let ns: Vec<usize> = if self.grid.n.is_empty() {
            vec![base_n]
        } else {
            self.grid.n.clone()
        };
        let ks: Vec<usize> = if self.grid.k.is_empty() {
            vec![self.scenario.laacad.k]
        } else {
            self.grid.k.clone()
        };
        let alphas: Vec<f64> = if self.grid.alpha.is_empty() {
            vec![self.scenario.laacad.alpha]
        } else {
            self.grid.alpha.clone()
        };
        let gammas: Vec<Option<f64>> = if self.grid.gamma.is_empty() {
            vec![None]
        } else {
            self.grid.gamma.iter().map(|&g| Some(g)).collect()
        };
        let mut tuples = Vec::new();
        for &n in &ns {
            for &k in &ks {
                for &alpha in &alphas {
                    for &gamma in &gammas {
                        tuples.push((n, k, alpha, gamma));
                    }
                }
            }
        }
        tuples
    }

    /// Position-by-position tuples of the non-empty parameter axes.
    ///
    /// # Errors
    ///
    /// Fails when the non-empty axes disagree on length.
    fn zipped_tuples(&self, base_n: usize) -> Result<Vec<ParamTuple>, SpecError> {
        let lengths: Vec<(&str, usize)> = [
            ("n", self.grid.n.len()),
            ("k", self.grid.k.len()),
            ("alpha", self.grid.alpha.len()),
            ("gamma", self.grid.gamma.len()),
        ]
        .into_iter()
        .filter(|&(_, len)| len > 0)
        .collect();
        let Some(&(_, len)) = lengths.first() else {
            // No parameter axes at all: one default tuple.
            return Ok(vec![(
                base_n,
                self.scenario.laacad.k,
                self.scenario.laacad.alpha,
                None,
            )]);
        };
        if let Some(&(axis, other)) = lengths.iter().find(|&&(_, l)| l != len) {
            return Err(SpecError::Build(format!(
                "zip grid axes disagree on length: `{}` has {} entries but `{axis}` has {other}",
                lengths[0].0, len
            )));
        }
        Ok((0..len)
            .map(|i| {
                (
                    self.grid.n.get(i).copied().unwrap_or(base_n),
                    self.grid
                        .k
                        .get(i)
                        .copied()
                        .unwrap_or(self.scenario.laacad.k),
                    self.grid
                        .alpha
                        .get(i)
                        .copied()
                        .unwrap_or(self.scenario.laacad.alpha),
                    self.grid.gamma.get(i).copied(),
                )
            })
            .collect())
    }

    /// Decodes a campaign document (`name`, `[scenario]`, `[grid]`).
    pub fn from_value(v: &Value) -> Result<Self, SpecError> {
        let scenario = ScenarioSpec::from_value(
            v.get("scenario")
                .ok_or_else(|| DecodeError::new("campaign.scenario", "missing required field"))?,
        )?;
        let grid = match v.get("grid") {
            None => ParamGrid::default(),
            Some(g) => ParamGrid::from_value(g, "campaign.grid")?,
        };
        let name = match decode::opt_str(v, "name", "campaign")? {
            Some(n) => n,
            None => scenario.name.clone(),
        };
        Ok(CampaignSpec {
            name,
            scenario,
            grid,
        })
    }

    /// Encodes the campaign as a [`Value`] tree.
    pub fn to_value(&self) -> Value {
        let mut t = Value::table();
        t.insert("name", Value::Str(self.name.clone()));
        t.insert("scenario", self.scenario.to_value());
        t.insert("grid", self.grid.to_value());
        t
    }

    /// Parses a TOML campaign document.
    pub fn from_toml(text: &str) -> Result<Self, SpecError> {
        let v = crate::toml::parse(text).map_err(SpecError::Toml)?;
        Self::from_value(&v)
    }

    /// Serializes as TOML.
    pub fn to_toml(&self) -> String {
        crate::toml::to_string(&self.to_value())
    }

    /// Loads a campaign — or a bare scenario, promoted to a one-cell
    /// campaign — from a TOML/JSON file.
    pub fn from_path(path: &std::path::Path) -> Result<Self, SpecError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| SpecError::Build(format!("cannot read {}: {e}", path.display())))?;
        let v = match path.extension().and_then(|e| e.to_str()) {
            Some("json") => crate::json::parse(&text).map_err(SpecError::Json)?,
            _ => crate::toml::parse(&text).map_err(SpecError::Toml)?,
        };
        if v.get("scenario").is_some() {
            Self::from_value(&v)
        } else {
            let scenario = ScenarioSpec::from_value(&v)?;
            Ok(CampaignSpec {
                name: scenario.name.clone(),
                scenario,
                grid: ParamGrid::default(),
            })
        }
    }
}

/// Expands and executes a campaign across all cores.
///
/// Results come back in expansion order (not completion order), so two
/// runs of the same campaign produce identical result sequences.
///
/// # Errors
///
/// Fails only when the grid itself cannot be expanded; individual cell
/// failures are embedded in the returned [`CellResult`]s.
pub fn run_campaign(campaign: &CampaignSpec) -> Result<Vec<CellResult>, SpecError> {
    let cells = campaign.expand()?;
    Ok(parallel_map(cells, run_cell))
}

fn run_cell(cell: CampaignCell) -> CellResult {
    let outcome = run_scenario(&cell.scenario, cell.seed);
    CellResult {
        cell: CellInfo {
            index: cell.index,
            scenario: cell.scenario.name.clone(),
            seed: cell.seed,
            n: cell.n,
            k: cell.k,
            alpha: cell.alpha,
            gamma: cell.gamma,
        },
        outcome,
    }
}

/// [`run_campaign`] with **streaming result persistence**: every cell's
/// JSONL line and CSV row are appended to `store`'s files — and flushed —
/// the moment the cell (and every cell before it, to keep expansion
/// order) completes, instead of buffering the whole grid in memory until
/// the end. A campaign killed halfway leaves every finished row on disk;
/// a completed one produces files **byte-identical** to
/// [`ResultStore::write`] on the same results (pinned by the
/// `streaming` integration test). Returns the two file paths and the
/// full in-memory results for downstream rendering.
///
/// # Errors
///
/// Fails when the grid cannot be expanded ([`SpecError::Build`]) or a
/// file operation fails ([`SpecError::Io`]); per-cell *run* failures are
/// embedded in the returned [`CellResult`]s as with [`run_campaign`].
pub fn run_campaign_streamed(
    campaign: &CampaignSpec,
    store: &ResultStore,
) -> Result<(PathBuf, PathBuf, Vec<CellResult>), SpecError> {
    let cells = campaign.expand()?;
    let mut files = store
        .open_stream(&campaign.name)
        .map_err(|e| SpecError::Io(e.to_string()))?;
    let mut write_err: Option<std::io::Error> = None;
    let results = parallel_map_visit(0, cells, run_cell, |_, result| {
        if write_err.is_none() {
            if let Err(e) = files.append(result) {
                write_err = Some(e);
            }
        }
    });
    if let Some(e) = write_err {
        return Err(SpecError::Io(e.to_string()));
    }
    let (jsonl, csv) = files.into_paths();
    Ok((jsonl, csv, results))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_order_is_deterministic() {
        let mut campaign = CampaignSpec::over_seeds(ScenarioSpec::uniform("grid", 10, 1), [1, 2]);
        campaign.grid.k = vec![1, 2];
        campaign.grid.n = vec![10, 20];
        let cells = campaign.expand().unwrap();
        assert_eq!(cells.len(), 8);
        let params: Vec<(usize, usize, u64)> = cells.iter().map(|c| (c.n, c.k, c.seed)).collect();
        assert_eq!(
            params,
            vec![
                (10, 1, 1),
                (10, 1, 2),
                (10, 2, 1),
                (10, 2, 2),
                (20, 1, 1),
                (20, 1, 2),
                (20, 2, 1),
                (20, 2, 2),
            ]
        );
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index, i);
            assert_eq!(c.scenario.placement.node_count(), c.n);
            assert_eq!(c.scenario.laacad.k, c.k);
        }
    }

    #[test]
    fn campaign_runs_in_parallel_and_in_order() {
        let mut spec = ScenarioSpec::uniform("par", 12, 1);
        spec.laacad.max_rounds = 40;
        let campaign = CampaignSpec::over_seeds(spec, [5, 6, 7, 8]);
        let results = run_campaign(&campaign).unwrap();
        assert_eq!(results.len(), 4);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.cell.index, i);
            assert_eq!(r.cell.seed, 5 + i as u64);
            let out = r.outcome.as_ref().unwrap();
            assert_eq!(out.seed, r.cell.seed);
            assert!(out.coverage.covered_fraction > 0.9);
        }
    }

    #[test]
    fn n_sweep_over_custom_placement_fails_cleanly() {
        let mut spec = ScenarioSpec::uniform("bad", 4, 1);
        spec.placement = crate::spec::PlacementSpec::Custom {
            points: vec![(0.2, 0.2), (0.8, 0.8), (0.2, 0.8), (0.8, 0.2)],
        };
        let mut campaign = CampaignSpec::over_seeds(spec, [1]);
        campaign.grid.n = vec![8];
        assert!(campaign.expand().is_err());
    }

    #[test]
    fn campaign_toml_round_trip() {
        let mut campaign = CampaignSpec::over_seeds(ScenarioSpec::uniform("rt", 10, 2), [3, 4]);
        campaign.grid.alpha = vec![0.5, 1.0];
        campaign.grid.gamma = vec![0.3, 0.4];
        campaign.grid.zip = true;
        let text = campaign.to_toml();
        let back = CampaignSpec::from_toml(&text).unwrap();
        assert_eq!(campaign, back, "TOML:\n{text}");
    }

    #[test]
    fn gamma_axis_crosses_and_overrides() {
        let mut campaign = CampaignSpec::over_seeds(ScenarioSpec::uniform("g", 10, 1), [1]);
        campaign.grid.k = vec![1, 2];
        campaign.grid.gamma = vec![0.3, 0.5];
        let cells = campaign.expand().unwrap();
        assert_eq!(cells.len(), 4);
        let params: Vec<(usize, Option<f64>)> = cells.iter().map(|c| (c.k, c.gamma)).collect();
        assert_eq!(
            params,
            vec![
                (1, Some(0.3)),
                (1, Some(0.5)),
                (2, Some(0.3)),
                (2, Some(0.5)),
            ]
        );
        for c in &cells {
            assert_eq!(c.scenario.laacad.gamma, c.gamma, "override applied");
        }
    }

    #[test]
    fn zip_grid_pairs_axes_position_by_position() {
        let mut campaign = CampaignSpec::over_seeds(ScenarioSpec::uniform("z", 10, 1), [1, 2]);
        campaign.grid.zip = true;
        campaign.grid.n = vec![10, 40, 90];
        campaign.grid.gamma = vec![0.5, 0.3, 0.2];
        let cells = campaign.expand().unwrap();
        assert_eq!(cells.len(), 6, "3 zipped tuples × 2 seeds");
        let params: Vec<(usize, Option<f64>, u64)> =
            cells.iter().map(|c| (c.n, c.gamma, c.seed)).collect();
        assert_eq!(
            params,
            vec![
                (10, Some(0.5), 1),
                (10, Some(0.5), 2),
                (40, Some(0.3), 1),
                (40, Some(0.3), 2),
                (90, Some(0.2), 1),
                (90, Some(0.2), 2),
            ]
        );
        // Unmentioned axes keep the scenario's own values.
        assert!(cells.iter().all(|c| c.k == 1));
    }

    #[test]
    fn zip_grid_rejects_unequal_axis_lengths() {
        let mut campaign = CampaignSpec::over_seeds(ScenarioSpec::uniform("bad-zip", 10, 1), [1]);
        campaign.grid.zip = true;
        campaign.grid.n = vec![10, 20];
        campaign.grid.k = vec![1, 2, 3];
        let err = campaign.expand().unwrap_err();
        assert!(err.to_string().contains("zip"), "{err}");
    }
}
