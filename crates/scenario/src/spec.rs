//! The declarative scenario specification.
//!
//! A [`ScenarioSpec`] fully describes one LAACAD experiment: the target
//! region (named gallery entry, parametric square/rect, or custom polygon
//! with obstacle holes), the initial placement, the algorithm
//! configuration, a timeline of dynamic [`EventSpec`]s, and evaluation
//! settings. Specs load from TOML or JSON (see [`crate::toml`] /
//! [`crate::json`]) and build the concrete [`Region`], initial positions
//! and [`LaacadConfig`] for a given seed.

use crate::value::{decode, encode, DecodeError, Value};
use laacad::{CoordinateMode, ExecutionMode, LaacadConfig, RingCapPolicy};
use laacad_dist::{
    AsyncConfig, Axis, Backoff, Corruption, CrashEvent, DelayModel, Drift, FaultPlan,
    PartitionKind, PartitionSchedule,
};
use laacad_geom::{Point, Polygon};
use laacad_region::sampling::{sample_clustered, sample_uniform};
use laacad_region::{gallery, Region};
use std::fmt;

/// Any error arising while loading or building a scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The document failed to parse as TOML.
    Toml(crate::toml::TomlError),
    /// The document failed to parse as JSON.
    Json(crate::json::JsonError),
    /// The value tree did not decode into a spec.
    Decode(DecodeError),
    /// The spec decoded but describes an unbuildable scenario.
    Build(String),
    /// A result store operation failed (streaming campaign runs).
    Io(String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Toml(e) => write!(f, "{e}"),
            SpecError::Json(e) => write!(f, "{e}"),
            SpecError::Decode(e) => write!(f, "{e}"),
            SpecError::Build(m) => write!(f, "cannot build scenario: {m}"),
            SpecError::Io(m) => write!(f, "result store I/O failed: {m}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<DecodeError> for SpecError {
    fn from(e: DecodeError) -> Self {
        SpecError::Decode(e)
    }
}

/// The target area.
#[derive(Debug, Clone, PartialEq)]
pub enum RegionSpec {
    /// A named gallery region (see [`laacad_region::gallery`]):
    /// `unit_square`, `l_shape`, `cross`, `coast`, `lakes`, `corridor`,
    /// `forest`.
    Named(String),
    /// An axis-aligned square with the given side.
    Square {
        /// Side length.
        side: f64,
    },
    /// An axis-aligned rectangle.
    Rect {
        /// Width.
        width: f64,
        /// Height.
        height: f64,
    },
    /// A custom simple polygon with optional obstacle holes.
    Polygon {
        /// Outer boundary vertices.
        outer: Vec<(f64, f64)>,
        /// Hole polygons (obstacles).
        holes: Vec<Vec<(f64, f64)>>,
    },
}

impl RegionSpec {
    /// Builds the concrete region.
    pub fn build(&self) -> Result<Region, SpecError> {
        let build_err = |m: String| SpecError::Build(m);
        match self {
            RegionSpec::Named(name) => match name.as_str() {
                "unit_square" => Ok(gallery::unit_square()),
                "l_shape" => Ok(gallery::l_shape()),
                "cross" => Ok(gallery::cross_shape()),
                "coast" => Ok(gallery::irregular_coast()),
                "lakes" => Ok(gallery::square_with_lakes()),
                "corridor" => Ok(gallery::corridor()),
                "forest" => Ok(gallery::forest_with_lake()),
                other => Err(build_err(format!(
                    "unknown gallery region `{other}` (expected one of \
                     unit_square, l_shape, cross, coast, lakes, corridor, forest)"
                ))),
            },
            RegionSpec::Square { side } => {
                Region::square(*side).map_err(|e| build_err(e.to_string()))
            }
            RegionSpec::Rect { width, height } => {
                Region::rect(*width, *height).map_err(|e| build_err(e.to_string()))
            }
            RegionSpec::Polygon { outer, holes } => {
                let poly = |pts: &[(f64, f64)]| {
                    Polygon::new(pts.iter().map(|&(x, y)| Point::new(x, y)))
                        .map_err(|e| build_err(e.to_string()))
                };
                let outer = poly(outer)?;
                if holes.is_empty() {
                    Ok(Region::new(outer))
                } else {
                    let holes = holes
                        .iter()
                        .map(|h| poly(h))
                        .collect::<Result<Vec<_>, _>>()?;
                    Region::with_holes(outer, holes).map_err(|e| build_err(e.to_string()))
                }
            }
        }
    }

    fn from_value(v: &Value, path: &str) -> Result<Self, SpecError> {
        let kind = decode::req_str(v, "kind", path)?;
        match kind.as_str() {
            "named" => Ok(RegionSpec::Named(decode::req_str(v, "name", path)?)),
            "square" => Ok(RegionSpec::Square {
                side: decode::req_f64(v, "side", path)?,
            }),
            "rect" => Ok(RegionSpec::Rect {
                width: decode::req_f64(v, "width", path)?,
                height: decode::req_f64(v, "height", path)?,
            }),
            "polygon" => {
                let p = format!("{path}.outer");
                let outer = decode::to_pairs(
                    v.get("outer")
                        .ok_or_else(|| DecodeError::new(&p, "missing required field"))?,
                    &p,
                )?;
                let holes = match v.get("holes") {
                    None => Vec::new(),
                    Some(hs) => {
                        let hp = format!("{path}.holes");
                        hs.as_array()
                            .ok_or_else(|| DecodeError::new(&hp, "expected array of polygons"))?
                            .iter()
                            .enumerate()
                            .map(|(i, h)| decode::to_pairs(h, &format!("{hp}[{i}]")))
                            .collect::<Result<Vec<_>, _>>()?
                    }
                };
                Ok(RegionSpec::Polygon { outer, holes })
            }
            other => Err(DecodeError::new(
                format!("{path}.kind"),
                format!("unknown region kind `{other}`"),
            )
            .into()),
        }
    }

    fn to_value(&self) -> Value {
        let mut t = Value::table();
        match self {
            RegionSpec::Named(name) => {
                t.insert("kind", Value::Str("named".into()));
                t.insert("name", Value::Str(name.clone()));
            }
            RegionSpec::Square { side } => {
                t.insert("kind", Value::Str("square".into()));
                t.insert("side", Value::Float(*side));
            }
            RegionSpec::Rect { width, height } => {
                t.insert("kind", Value::Str("rect".into()));
                t.insert("width", Value::Float(*width));
                t.insert("height", Value::Float(*height));
            }
            RegionSpec::Polygon { outer, holes } => {
                t.insert("kind", Value::Str("polygon".into()));
                t.insert("outer", encode::pairs(outer));
                if !holes.is_empty() {
                    t.insert(
                        "holes",
                        Value::Array(holes.iter().map(|h| encode::pairs(h)).collect()),
                    );
                }
            }
        }
        t
    }
}

/// Initial node placement.
#[derive(Debug, Clone, PartialEq)]
pub enum PlacementSpec {
    /// `n` nodes sampled uniformly from the free area.
    Uniform {
        /// Node count.
        n: usize,
    },
    /// `n` nodes sampled from a disk around `center`, projected into the
    /// region (the paper's Fig. 5 corner dump).
    Clustered {
        /// Node count.
        n: usize,
        /// Cluster center.
        center: (f64, f64),
        /// Cluster radius.
        radius: f64,
    },
    /// Like `Clustered` with the center placed just inside the region's
    /// bounding-box minimum corner — the adversarial start of Bartolini
    /// et al.'s Push & Pull evaluations, without hard-coding coordinates.
    Corner {
        /// Node count.
        n: usize,
        /// Cluster radius.
        radius: f64,
    },
    /// Explicit positions.
    Custom {
        /// The positions.
        points: Vec<(f64, f64)>,
    },
}

impl PlacementSpec {
    /// Number of nodes this placement produces.
    pub fn node_count(&self) -> usize {
        match self {
            PlacementSpec::Uniform { n }
            | PlacementSpec::Clustered { n, .. }
            | PlacementSpec::Corner { n, .. } => *n,
            PlacementSpec::Custom { points } => points.len(),
        }
    }

    /// Returns a copy with the node count replaced (campaign grids sweep
    /// `n`). `Custom` placements reject resizing.
    pub fn with_node_count(&self, n: usize) -> Result<Self, SpecError> {
        match self {
            PlacementSpec::Uniform { .. } => Ok(PlacementSpec::Uniform { n }),
            PlacementSpec::Clustered { center, radius, .. } => Ok(PlacementSpec::Clustered {
                n,
                center: *center,
                radius: *radius,
            }),
            PlacementSpec::Corner { radius, .. } => {
                Ok(PlacementSpec::Corner { n, radius: *radius })
            }
            PlacementSpec::Custom { .. } => Err(SpecError::Build(
                "cannot sweep node count over a custom placement".into(),
            )),
        }
    }

    /// Builds the initial positions for the given seed.
    pub fn build(&self, region: &Region, seed: u64) -> Result<Vec<Point>, SpecError> {
        match self {
            PlacementSpec::Uniform { n } => Ok(sample_uniform(region, *n, seed)),
            PlacementSpec::Clustered { n, center, radius } => Ok(sample_clustered(
                region,
                *n,
                region.project(Point::new(center.0, center.1)),
                *radius,
                seed,
            )),
            PlacementSpec::Corner { n, radius } => {
                let bb = region.bounding_box();
                let center = region.project(Point::new(bb.min().x + *radius, bb.min().y + *radius));
                Ok(sample_clustered(region, *n, center, *radius, seed))
            }
            PlacementSpec::Custom { points } => {
                let pts: Vec<Point> = points.iter().map(|&(x, y)| Point::new(x, y)).collect();
                for (i, p) in pts.iter().enumerate() {
                    if !region.contains(*p) {
                        return Err(SpecError::Build(format!(
                            "custom placement point {i} ({}, {}) lies outside the region",
                            p.x, p.y
                        )));
                    }
                }
                Ok(pts)
            }
        }
    }

    fn from_value(v: &Value, path: &str) -> Result<Self, SpecError> {
        let kind = decode::req_str(v, "kind", path)?;
        match kind.as_str() {
            "uniform" => Ok(PlacementSpec::Uniform {
                n: decode::req_usize(v, "n", path)?,
            }),
            "clustered" => Ok(PlacementSpec::Clustered {
                n: decode::req_usize(v, "n", path)?,
                center: decode::req_pair(v, "center", path)?,
                radius: decode::req_f64(v, "radius", path)?,
            }),
            "corner" => Ok(PlacementSpec::Corner {
                n: decode::req_usize(v, "n", path)?,
                radius: decode::req_f64(v, "radius", path)?,
            }),
            "custom" => {
                let p = format!("{path}.points");
                let points = decode::to_pairs(
                    v.get("points")
                        .ok_or_else(|| DecodeError::new(&p, "missing required field"))?,
                    &p,
                )?;
                Ok(PlacementSpec::Custom { points })
            }
            other => Err(DecodeError::new(
                format!("{path}.kind"),
                format!("unknown placement kind `{other}`"),
            )
            .into()),
        }
    }

    fn to_value(&self) -> Value {
        let mut t = Value::table();
        match self {
            PlacementSpec::Uniform { n } => {
                t.insert("kind", Value::Str("uniform".into()));
                t.insert("n", encode::int(*n));
            }
            PlacementSpec::Clustered { n, center, radius } => {
                t.insert("kind", Value::Str("clustered".into()));
                t.insert("n", encode::int(*n));
                t.insert("center", encode::pair(*center));
                t.insert("radius", Value::Float(*radius));
            }
            PlacementSpec::Corner { n, radius } => {
                t.insert("kind", Value::Str("corner".into()));
                t.insert("n", encode::int(*n));
                t.insert("radius", Value::Float(*radius));
            }
            PlacementSpec::Custom { points } => {
                t.insert("kind", Value::Str("custom".into()));
                t.insert("points", encode::pairs(points));
            }
        }
        t
    }
}

/// LAACAD algorithm parameters.
///
/// `gamma` and `epsilon` are optional: when omitted, the engine derives
/// them from the region and node count exactly like the experiment
/// harness does (`LaacadConfig::recommended_gamma` and an ε scaled to the
/// expected converged sensing range).
#[derive(Debug, Clone, PartialEq)]
pub struct AlgorithmSpec {
    /// Coverage degree `k`.
    pub k: usize,
    /// Step size `α ∈ (0, 1]`.
    pub alpha: f64,
    /// Stopping tolerance (`None` → scaled default).
    pub epsilon: Option<f64>,
    /// Transmission range (`None` → recommended for region/n/k).
    pub gamma: Option<f64>,
    /// Round limit.
    pub max_rounds: usize,
    /// Execution schedule.
    pub execution: ExecutionMode,
    /// How nodes obtain neighbor coordinates: `coordinates = "oracle"`
    /// (exact positions, the default) or `"ranging"` (local MDS from
    /// noisy pairwise distances, with `ranging_rel` / `ranging_abs`
    /// noise sigmas).
    pub coordinates: CoordinateMode,
    /// Ring-cap policy.
    pub ring_cap: RingCapPolicy,
    /// Snapshot cadence (`None` disables snapshots).
    pub snapshot_every: Option<usize>,
    /// Worker threads for the synchronous round engine (`Some(0)` = all
    /// cores). `None` keeps the engine serial — campaigns already run
    /// one cell per core, so per-cell parallelism would oversubscribe.
    /// Results are bit-identical for every value.
    pub threads: Option<usize>,
    /// Cross-round local-view cache (default on). Results are
    /// bit-identical with the cache off; the knob exists so ablations
    /// and tests can diff cached vs. uncached histories.
    pub cache: bool,
    /// Dirty-node index (default on): skip the expanding-ring search
    /// for nodes whose ρ-neighborhood saw no movement. Results are
    /// bit-identical with the index off.
    pub dirty_skip: bool,
    /// Exact reach radii for the dirty classifier (default on). Results
    /// are bit-identical with the knob off.
    pub exact_reach: bool,
    /// ρ warm start for re-activated ring searches (default on).
    /// Results are bit-identical with the knob off.
    pub warm_start: bool,
    /// Incremental adjacency-snapshot maintenance (default on). Results
    /// are bit-identical with the knob off.
    pub incremental_index: bool,
    /// Flat dense spatial grid for the network and classifier indexes
    /// (default on; falls back to the hash grid per-build when the point
    /// cloud is too sparse). Results are bit-identical with the knob
    /// off.
    pub flat_grid: bool,
    /// Per-worker arena reuse of the round engine's `O(N)` transient
    /// buffers (default on). Results are bit-identical with the knob
    /// off.
    pub arena: bool,
    /// Per-cell telemetry recording (default off). Honored by the
    /// campaign runner — not by [`LaacadConfig`], which telemetry never
    /// touches: when set, [`crate::campaign::run_campaign_observed`]
    /// installs a [`laacad::SessionTelemetry`] recorder on the cell's
    /// session and writes a JSONL metric stream plus a Chrome trace
    /// file beside the result store. Purely observational — results are
    /// byte-identical either way.
    pub telemetry: bool,
    /// Fault-injection plan (the top-level `[faults]` TOML section).
    /// When present the scenario runs on the asynchronous
    /// message-driven [`laacad_dist::AsyncExecutor`] instead of the
    /// synchronous round engine, and the outcome gains
    /// convergence-under-faults metrics.
    pub faults: Option<FaultSpec>,
}

impl Default for AlgorithmSpec {
    fn default() -> Self {
        AlgorithmSpec {
            k: 1,
            alpha: 0.5,
            epsilon: None,
            gamma: None,
            max_rounds: 300,
            execution: ExecutionMode::Synchronous,
            coordinates: CoordinateMode::Oracle,
            ring_cap: RingCapPolicy::Exact,
            snapshot_every: None,
            threads: None,
            cache: true,
            dirty_skip: true,
            exact_reach: true,
            warm_start: true,
            incremental_index: true,
            flat_grid: true,
            arena: true,
            telemetry: false,
            faults: None,
        }
    }
}

impl AlgorithmSpec {
    /// Builds the concrete config for a region with `n` initial nodes.
    pub fn build(&self, region: &Region, n: usize, seed: u64) -> Result<LaacadConfig, SpecError> {
        let area = region.area();
        let gamma = self
            .gamma
            .unwrap_or_else(|| LaacadConfig::recommended_gamma(area, n.max(1), self.k.max(1)));
        let epsilon = self.epsilon.unwrap_or_else(|| {
            let expected_range =
                (self.k.max(1) as f64 * area / (std::f64::consts::PI * n.max(1) as f64)).sqrt();
            5e-3 * expected_range
        });
        let mut builder = LaacadConfig::builder(self.k);
        builder
            .transmission_range(gamma)
            .alpha(self.alpha)
            .epsilon(epsilon)
            .max_rounds(self.max_rounds)
            .execution(self.execution)
            .coordinates(self.coordinates)
            .ring_cap(self.ring_cap)
            .seed(seed);
        if let Some(every) = self.snapshot_every {
            builder.snapshot_every(every);
        }
        if let Some(threads) = self.threads {
            builder.threads(threads);
        }
        builder.cache(self.cache);
        builder.dirty_skip(self.dirty_skip);
        builder.exact_reach(self.exact_reach);
        builder.warm_start(self.warm_start);
        builder.incremental_index(self.incremental_index);
        builder.flat_grid(self.flat_grid);
        builder.arena(self.arena);
        builder.build().map_err(|e| SpecError::Build(e.to_string()))
    }

    fn from_value(v: &Value, path: &str) -> Result<Self, SpecError> {
        let d = AlgorithmSpec::default();
        let execution = match decode::opt_str(v, "execution", path)? {
            None => d.execution,
            Some(s) => match s.as_str() {
                "synchronous" => ExecutionMode::Synchronous,
                "sequential" => ExecutionMode::Sequential,
                other => {
                    return Err(DecodeError::new(
                        format!("{path}.execution"),
                        format!("unknown execution mode `{other}`"),
                    )
                    .into())
                }
            },
        };
        let coordinates = match decode::opt_str(v, "coordinates", path)? {
            None => d.coordinates,
            Some(s) => match s.as_str() {
                "oracle" => CoordinateMode::Oracle,
                "ranging" => {
                    let rel = decode::opt_f64(v, "ranging_rel", path)?.unwrap_or(0.0);
                    let abs = decode::opt_f64(v, "ranging_abs", path)?.unwrap_or(0.0);
                    if rel < 0.0 || abs < 0.0 {
                        return Err(DecodeError::new(
                            format!("{path}.ranging_rel"),
                            "ranging noise sigmas must be non-negative".to_string(),
                        )
                        .into());
                    }
                    CoordinateMode::Ranging(laacad_wsn::ranging::RangingNoise::new(rel, abs))
                }
                other => {
                    return Err(DecodeError::new(
                        format!("{path}.coordinates"),
                        format!("unknown coordinate mode `{other}`"),
                    )
                    .into())
                }
            },
        };
        let ring_cap = match decode::opt_str(v, "ring_cap", path)? {
            None => d.ring_cap,
            Some(s) => match s.as_str() {
                "exact" => RingCapPolicy::Exact,
                "always_cap" => RingCapPolicy::AlwaysCap,
                other => {
                    return Err(DecodeError::new(
                        format!("{path}.ring_cap"),
                        format!("unknown ring-cap policy `{other}`"),
                    )
                    .into())
                }
            },
        };
        Ok(AlgorithmSpec {
            k: decode::req_usize(v, "k", path)?,
            alpha: decode::opt_f64(v, "alpha", path)?.unwrap_or(d.alpha),
            epsilon: decode::opt_f64(v, "epsilon", path)?,
            gamma: decode::opt_f64(v, "gamma", path)?,
            max_rounds: decode::opt_usize(v, "max_rounds", path)?.unwrap_or(d.max_rounds),
            execution,
            coordinates,
            ring_cap,
            snapshot_every: decode::opt_usize(v, "snapshot_every", path)?,
            threads: decode::opt_usize(v, "threads", path)?,
            cache: decode::opt_bool(v, "cache", path)?.unwrap_or(d.cache),
            dirty_skip: decode::opt_bool(v, "dirty_skip", path)?.unwrap_or(d.dirty_skip),
            exact_reach: decode::opt_bool(v, "exact_reach", path)?.unwrap_or(d.exact_reach),
            warm_start: decode::opt_bool(v, "warm_start", path)?.unwrap_or(d.warm_start),
            incremental_index: decode::opt_bool(v, "incremental_index", path)?
                .unwrap_or(d.incremental_index),
            flat_grid: decode::opt_bool(v, "flat_grid", path)?.unwrap_or(d.flat_grid),
            arena: decode::opt_bool(v, "arena", path)?.unwrap_or(d.arena),
            telemetry: decode::opt_bool(v, "telemetry", path)?.unwrap_or(d.telemetry),
            // Decoded from the document's top-level `faults` table by
            // `ScenarioSpec::from_value`, not from the laacad table.
            faults: None,
        })
    }

    fn to_value(&self) -> Value {
        let d = AlgorithmSpec::default();
        let mut t = Value::table();
        t.insert("k", encode::int(self.k));
        t.insert("alpha", Value::Float(self.alpha));
        if let Some(e) = self.epsilon {
            t.insert("epsilon", Value::Float(e));
        }
        if let Some(g) = self.gamma {
            t.insert("gamma", Value::Float(g));
        }
        t.insert("max_rounds", encode::int(self.max_rounds));
        if self.execution != d.execution {
            t.insert(
                "execution",
                Value::Str(
                    match self.execution {
                        ExecutionMode::Synchronous => "synchronous",
                        ExecutionMode::Sequential => "sequential",
                    }
                    .into(),
                ),
            );
        }
        if let CoordinateMode::Ranging(noise) = self.coordinates {
            t.insert("coordinates", Value::Str("ranging".into()));
            if noise.rel_sigma != 0.0 {
                t.insert("ranging_rel", Value::Float(noise.rel_sigma));
            }
            if noise.abs_sigma != 0.0 {
                t.insert("ranging_abs", Value::Float(noise.abs_sigma));
            }
        }
        if self.ring_cap != d.ring_cap {
            t.insert(
                "ring_cap",
                Value::Str(
                    match self.ring_cap {
                        RingCapPolicy::Exact => "exact",
                        RingCapPolicy::AlwaysCap => "always_cap",
                    }
                    .into(),
                ),
            );
        }
        if let Some(every) = self.snapshot_every {
            t.insert("snapshot_every", encode::int(every));
        }
        if let Some(threads) = self.threads {
            t.insert("threads", encode::int(threads));
        }
        if self.cache != d.cache {
            t.insert("cache", Value::Bool(self.cache));
        }
        if self.dirty_skip != d.dirty_skip {
            t.insert("dirty_skip", Value::Bool(self.dirty_skip));
        }
        if self.exact_reach != d.exact_reach {
            t.insert("exact_reach", Value::Bool(self.exact_reach));
        }
        if self.warm_start != d.warm_start {
            t.insert("warm_start", Value::Bool(self.warm_start));
        }
        if self.incremental_index != d.incremental_index {
            t.insert("incremental_index", Value::Bool(self.incremental_index));
        }
        if self.flat_grid != d.flat_grid {
            t.insert("flat_grid", Value::Bool(self.flat_grid));
        }
        if self.arena != d.arena {
            t.insert("arena", Value::Bool(self.arena));
        }
        if self.telemetry != d.telemetry {
            t.insert("telemetry", Value::Bool(self.telemetry));
        }
        t
    }
}

/// Declarative message-delay distribution (the `delay` knob of
/// [`FaultSpec`]). Extra per-hop ticks on top of the protocol's
/// one-tick base latency.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum DelaySpec {
    /// No extra delay (`delay = "none"`, the default).
    #[default]
    None,
    /// Constant extra delay (`delay = "fixed"`, `delay_ticks = t`).
    Fixed(u64),
    /// Uniform extra delay (`delay = "uniform"`, `delay_lo`/`delay_hi`).
    Uniform {
        /// Minimum extra delay in ticks.
        lo: u64,
        /// Maximum extra delay in ticks (inclusive).
        hi: u64,
    },
    /// Exponential extra delay (`delay = "exp"`, `delay_mean = m`).
    Exp {
        /// Mean extra delay in ticks.
        mean: f64,
    },
}

impl DelaySpec {
    fn to_model(self) -> DelayModel {
        match self {
            DelaySpec::None => DelayModel::None,
            DelaySpec::Fixed(ticks) => DelayModel::Fixed(ticks),
            DelaySpec::Uniform { lo, hi } => DelayModel::Uniform { lo, hi },
            DelaySpec::Exp { mean } => DelayModel::Exp { mean },
        }
    }
}

/// One scheduled crash (and optional recovery) in the fault plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashSpec {
    /// Node index to crash.
    pub node: usize,
    /// Tick at which the crash takes effect.
    pub at: u64,
    /// Tick of recovery (`None` = permanent).
    pub recover_at: Option<u64>,
}

/// One timed link partition (a `[[faults.partition]]` table).
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionSpec {
    /// What the partition severs.
    pub kind: PartitionKindSpec,
    /// Tick at which the partition opens.
    pub at: u64,
    /// Tick at which it heals (`None` = permanent).
    pub heal_at: Option<u64>,
}

/// Declarative partition shape.
#[derive(Debug, Clone, PartialEq)]
pub enum PartitionKindSpec {
    /// Geometric bipartition (`kind = "bipartition"`, `axis = "x"|"y"`,
    /// `coord = c`): sides frozen from the positions at activation.
    Bipartition {
        /// Cut axis (`"x"` or `"y"`).
        axis: char,
        /// Cut coordinate on that axis.
        coord: f64,
    },
    /// Explicit link mask (`kind = "links"`, `pairs = [[a, b], ...]`).
    Links {
        /// Severed undirected node-index pairs.
        pairs: Vec<(usize, usize)>,
    },
}

/// Declarative retransmission-backoff policy (the `backoff` knob).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum BackoffSpec {
    /// Retry every `ack_timeout` ticks (`backoff = "fixed"`, the
    /// default).
    #[default]
    Fixed,
    /// Adaptive RTT-based exponential backoff (`backoff = "adaptive"`,
    /// with `backoff_cap` / `backoff_jitter`).
    Adaptive {
        /// Upper bound on a single retry timeout, in ticks.
        cap: u64,
        /// Jitter fraction in `[0, 1]`.
        jitter: f64,
    },
}

/// Declarative fault-injection knobs (the top-level `[faults]` TOML
/// section). Presence of the section switches the scenario onto the
/// asynchronous message-driven executor; every knob defaults to the
/// fault-free value, so an empty `[faults]` table runs the async
/// executor in its sync-equivalent regime.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Per-copy message-loss probability in `[0, 1]`.
    pub loss: f64,
    /// Per-message duplication probability in `[0, 1]`.
    pub duplicate: f64,
    /// Extra per-hop delay distribution.
    pub delay: DelaySpec,
    /// Reordering-jitter probability in `[0, 1]` (jittered copies gain
    /// 1–3 extra ticks and overtake or fall behind their neighbors).
    pub jitter: f64,
    /// Ticks between hello retransmissions while acks are missing.
    pub ack_timeout: u64,
    /// Retransmission rounds before computing with a partial
    /// neighborhood.
    pub max_retries: u32,
    /// Virtual-time budget before graceful termination.
    pub max_ticks: u64,
    /// Scheduled crash/recover events.
    pub crash: Vec<CrashSpec>,
    /// Byzantine payload-corruption probability per transmitted hello
    /// (`corruption_rate`, 0 = all payloads honest).
    pub corruption_rate: f64,
    /// Receiver-side payload validation + quarantine
    /// (`corruption_validate`, default true). With validation off,
    /// absorbed lies are counted and surfaced as an outcome warning.
    pub corruption_validate: bool,
    /// Ticks a detected liar stays quarantined (`quarantine_ticks`).
    pub quarantine_ticks: u64,
    /// Plausibility slack for claimed positions
    /// (`corruption_tolerance`).
    pub corruption_tolerance: f64,
    /// Timed link partitions (`[[faults.partition]]`).
    pub partition: Vec<PartitionSpec>,
    /// Retransmission-backoff policy.
    pub backoff: BackoffSpec,
    /// Per-node clock-rate deviation bound (`drift_rate`, 0 = ideal).
    pub drift_rate: f64,
    /// Per-node initial clock skew bound in ticks (`drift_skew`).
    pub drift_skew: u64,
    /// Coverage-probe cadence in ticks over partition windows
    /// (`probe_every`); drives the partition coverage-floor and
    /// recovery metrics in the outcome.
    pub probe_every: u64,
}

impl Default for FaultSpec {
    fn default() -> Self {
        let proto = AsyncConfig::default();
        let corruption = Corruption::default();
        FaultSpec {
            loss: 0.0,
            duplicate: 0.0,
            delay: DelaySpec::None,
            jitter: 0.0,
            ack_timeout: proto.ack_timeout,
            max_retries: proto.max_retries,
            max_ticks: proto.max_ticks,
            crash: Vec::new(),
            corruption_rate: 0.0,
            corruption_validate: corruption.validate,
            quarantine_ticks: corruption.quarantine_ticks,
            corruption_tolerance: corruption.tolerance,
            partition: Vec::new(),
            backoff: BackoffSpec::Fixed,
            drift_rate: 0.0,
            drift_skew: 0,
            probe_every: 8,
        }
    }
}

impl FaultSpec {
    /// Builds the concrete executor inputs: the [`FaultPlan`] and the
    /// protocol/budget knobs.
    pub fn to_plan(&self) -> (FaultPlan, AsyncConfig) {
        let corruption = if self.corruption_rate > 0.0 || !self.corruption_validate {
            Some(Corruption {
                rate: self.corruption_rate,
                validate: self.corruption_validate,
                quarantine_ticks: self.quarantine_ticks,
                tolerance: self.corruption_tolerance,
            })
        } else {
            None
        };
        let drift = if self.drift_rate > 0.0 || self.drift_skew > 0 {
            Some(Drift {
                rate: self.drift_rate,
                skew: self.drift_skew,
            })
        } else {
            None
        };
        let plan = FaultPlan {
            loss: self.loss,
            duplicate: self.duplicate,
            delay: self.delay.to_model(),
            jitter: self.jitter,
            crashes: self
                .crash
                .iter()
                .map(|c| CrashEvent {
                    node: c.node,
                    at: c.at,
                    recover_at: c.recover_at,
                })
                .collect(),
            corruption,
            partitions: self
                .partition
                .iter()
                .map(|p| PartitionSchedule {
                    kind: match &p.kind {
                        PartitionKindSpec::Bipartition { axis, coord } => {
                            PartitionKind::Bipartition {
                                axis: if *axis == 'y' { Axis::Y } else { Axis::X },
                                at: *coord,
                            }
                        }
                        PartitionKindSpec::Links { pairs } => PartitionKind::Links {
                            pairs: pairs.clone(),
                        },
                    },
                    at: p.at,
                    heal_at: p.heal_at,
                })
                .collect(),
            drift,
        };
        let proto = AsyncConfig {
            ack_timeout: self.ack_timeout,
            max_retries: self.max_retries,
            max_ticks: self.max_ticks,
            backoff: match self.backoff {
                BackoffSpec::Fixed => Backoff::Fixed,
                BackoffSpec::Adaptive { cap, jitter } => {
                    Backoff::ExponentialJittered { cap, jitter }
                }
            },
            ..AsyncConfig::default()
        };
        (plan, proto)
    }

    fn from_value(v: &Value, path: &str) -> Result<Self, SpecError> {
        let d = FaultSpec::default();
        let delay = match decode::opt_str(v, "delay", path)? {
            None => d.delay,
            Some(s) => match s.as_str() {
                "none" => DelaySpec::None,
                "fixed" => {
                    DelaySpec::Fixed(decode::opt_usize(v, "delay_ticks", path)?.unwrap_or(1) as u64)
                }
                "uniform" => DelaySpec::Uniform {
                    lo: decode::opt_usize(v, "delay_lo", path)?.unwrap_or(0) as u64,
                    hi: decode::opt_usize(v, "delay_hi", path)?.unwrap_or(1) as u64,
                },
                "exp" => DelaySpec::Exp {
                    mean: decode::opt_f64(v, "delay_mean", path)?.unwrap_or(1.0),
                },
                other => {
                    return Err(DecodeError::new(
                        format!("{path}.delay"),
                        format!("unknown delay model `{other}` (none|fixed|uniform|exp)"),
                    )
                    .into())
                }
            },
        };
        let crash = match v.get("crash") {
            None => Vec::new(),
            Some(cs) => {
                let p = format!("{path}.crash");
                cs.as_array()
                    .ok_or_else(|| DecodeError::new(&p, "expected array of crash tables"))?
                    .iter()
                    .enumerate()
                    .map(|(i, c)| {
                        let cp = format!("{p}[{i}]");
                        Ok(CrashSpec {
                            node: decode::req_usize(c, "node", &cp)?,
                            at: decode::req_usize(c, "at", &cp)? as u64,
                            recover_at: decode::opt_usize(c, "recover_at", &cp)?.map(|t| t as u64),
                        })
                    })
                    .collect::<Result<Vec<_>, SpecError>>()?
            }
        };
        let partition = match v.get("partition") {
            None => Vec::new(),
            Some(ps) => {
                let p = format!("{path}.partition");
                ps.as_array()
                    .ok_or_else(|| DecodeError::new(&p, "expected array of partition tables"))?
                    .iter()
                    .enumerate()
                    .map(|(i, pv)| {
                        let pp = format!("{p}[{i}]");
                        let kind = match decode::req_str(pv, "kind", &pp)?.as_str() {
                            "bipartition" => {
                                let axis = match decode::opt_str(pv, "axis", &pp)?.as_deref() {
                                    None | Some("x") => 'x',
                                    Some("y") => 'y',
                                    Some(other) => {
                                        return Err(DecodeError::new(
                                            format!("{pp}.axis"),
                                            format!("unknown axis `{other}` (x|y)"),
                                        )
                                        .into())
                                    }
                                };
                                PartitionKindSpec::Bipartition {
                                    axis,
                                    coord: decode::req_f64(pv, "coord", &pp)?,
                                }
                            }
                            "links" => {
                                let lp = format!("{pp}.pairs");
                                let pairs = pv
                                    .get("pairs")
                                    .ok_or_else(|| DecodeError::new(&lp, "missing required field"))?
                                    .as_array()
                                    .ok_or_else(|| {
                                        DecodeError::new(&lp, "expected array of [a, b] pairs")
                                    })?
                                    .iter()
                                    .enumerate()
                                    .map(|(j, pair)| {
                                        let ep = format!("{lp}[{j}]");
                                        let arr = pair.as_array().ok_or_else(|| {
                                            DecodeError::new(&ep, "expected [a, b] pair")
                                        })?;
                                        if arr.len() != 2 {
                                            return Err(DecodeError::new(
                                                &ep,
                                                "expected exactly two node indices",
                                            )
                                            .into());
                                        }
                                        Ok((
                                            decode::to_usize(&arr[0], &format!("{ep}[0]"))?,
                                            decode::to_usize(&arr[1], &format!("{ep}[1]"))?,
                                        ))
                                    })
                                    .collect::<Result<Vec<_>, SpecError>>()?;
                                PartitionKindSpec::Links { pairs }
                            }
                            other => {
                                return Err(DecodeError::new(
                                    format!("{pp}.kind"),
                                    format!("unknown partition kind `{other}` (bipartition|links)"),
                                )
                                .into())
                            }
                        };
                        Ok(PartitionSpec {
                            kind,
                            at: decode::req_usize(pv, "at", &pp)? as u64,
                            heal_at: decode::opt_usize(pv, "heal_at", &pp)?.map(|t| t as u64),
                        })
                    })
                    .collect::<Result<Vec<_>, SpecError>>()?
            }
        };
        let backoff = match decode::opt_str(v, "backoff", path)?.as_deref() {
            None | Some("fixed") => BackoffSpec::Fixed,
            Some("adaptive") => BackoffSpec::Adaptive {
                cap: decode::opt_usize(v, "backoff_cap", path)?.unwrap_or(64) as u64,
                jitter: decode::opt_f64(v, "backoff_jitter", path)?.unwrap_or(0.0),
            },
            Some(other) => {
                return Err(DecodeError::new(
                    format!("{path}.backoff"),
                    format!("unknown backoff policy `{other}` (fixed|adaptive)"),
                )
                .into())
            }
        };
        let spec = FaultSpec {
            loss: decode::opt_f64(v, "loss", path)?.unwrap_or(d.loss),
            duplicate: decode::opt_f64(v, "duplicate", path)?.unwrap_or(d.duplicate),
            delay,
            jitter: decode::opt_f64(v, "jitter", path)?.unwrap_or(d.jitter),
            ack_timeout: decode::opt_usize(v, "ack_timeout", path)?
                .map_or(d.ack_timeout, |t| t as u64),
            max_retries: decode::opt_usize(v, "max_retries", path)?
                .map_or(d.max_retries, |r| r as u32),
            max_ticks: decode::opt_usize(v, "max_ticks", path)?.map_or(d.max_ticks, |t| t as u64),
            crash,
            corruption_rate: decode::opt_f64(v, "corruption_rate", path)?
                .unwrap_or(d.corruption_rate),
            corruption_validate: decode::opt_bool(v, "corruption_validate", path)?
                .unwrap_or(d.corruption_validate),
            quarantine_ticks: decode::opt_usize(v, "quarantine_ticks", path)?
                .map_or(d.quarantine_ticks, |t| t as u64),
            corruption_tolerance: decode::opt_f64(v, "corruption_tolerance", path)?
                .unwrap_or(d.corruption_tolerance),
            partition,
            backoff,
            drift_rate: decode::opt_f64(v, "drift_rate", path)?.unwrap_or(d.drift_rate),
            drift_skew: decode::opt_usize(v, "drift_skew", path)?
                .map_or(d.drift_skew, |t| t as u64),
            probe_every: decode::opt_usize(v, "probe_every", path)?
                .map_or(d.probe_every, |t| t as u64),
        };
        for (name, p) in [
            ("loss", spec.loss),
            ("duplicate", spec.duplicate),
            ("jitter", spec.jitter),
            ("corruption_rate", spec.corruption_rate),
        ] {
            if !(0.0..=1.0).contains(&p) || p.is_nan() {
                return Err(SpecError::Build(format!(
                    "faults.{name} must be a probability in [0, 1], got {p}"
                )));
            }
        }
        if spec.drift_rate < 0.0 || spec.drift_rate >= 1.0 || spec.drift_rate.is_nan() {
            return Err(SpecError::Build(format!(
                "faults.drift_rate must be in [0, 1), got {}",
                spec.drift_rate
            )));
        }
        Ok(spec)
    }

    fn to_value(&self) -> Value {
        let d = FaultSpec::default();
        let mut t = Value::table();
        if self.loss != d.loss {
            t.insert("loss", Value::Float(self.loss));
        }
        if self.duplicate != d.duplicate {
            t.insert("duplicate", Value::Float(self.duplicate));
        }
        match self.delay {
            DelaySpec::None => {}
            DelaySpec::Fixed(ticks) => {
                t.insert("delay", Value::Str("fixed".into()));
                t.insert("delay_ticks", encode::int(ticks as usize));
            }
            DelaySpec::Uniform { lo, hi } => {
                t.insert("delay", Value::Str("uniform".into()));
                t.insert("delay_lo", encode::int(lo as usize));
                t.insert("delay_hi", encode::int(hi as usize));
            }
            DelaySpec::Exp { mean } => {
                t.insert("delay", Value::Str("exp".into()));
                t.insert("delay_mean", Value::Float(mean));
            }
        }
        if self.jitter != d.jitter {
            t.insert("jitter", Value::Float(self.jitter));
        }
        if self.ack_timeout != d.ack_timeout {
            t.insert("ack_timeout", encode::int(self.ack_timeout as usize));
        }
        if self.max_retries != d.max_retries {
            t.insert("max_retries", encode::int(self.max_retries as usize));
        }
        if self.max_ticks != d.max_ticks {
            t.insert("max_ticks", encode::int(self.max_ticks as usize));
        }
        if !self.crash.is_empty() {
            t.insert(
                "crash",
                Value::Array(
                    self.crash
                        .iter()
                        .map(|c| {
                            let mut ct = Value::table();
                            ct.insert("node", encode::int(c.node));
                            ct.insert("at", encode::int(c.at as usize));
                            if let Some(r) = c.recover_at {
                                ct.insert("recover_at", encode::int(r as usize));
                            }
                            ct
                        })
                        .collect(),
                ),
            );
        }
        if self.corruption_rate != d.corruption_rate {
            t.insert("corruption_rate", Value::Float(self.corruption_rate));
        }
        if self.corruption_validate != d.corruption_validate {
            t.insert("corruption_validate", Value::Bool(self.corruption_validate));
        }
        if self.quarantine_ticks != d.quarantine_ticks {
            t.insert(
                "quarantine_ticks",
                encode::int(self.quarantine_ticks as usize),
            );
        }
        if self.corruption_tolerance != d.corruption_tolerance {
            t.insert(
                "corruption_tolerance",
                Value::Float(self.corruption_tolerance),
            );
        }
        if let BackoffSpec::Adaptive { cap, jitter } = self.backoff {
            t.insert("backoff", Value::Str("adaptive".into()));
            t.insert("backoff_cap", encode::int(cap as usize));
            if jitter != 0.0 {
                t.insert("backoff_jitter", Value::Float(jitter));
            }
        }
        if self.drift_rate != d.drift_rate {
            t.insert("drift_rate", Value::Float(self.drift_rate));
        }
        if self.drift_skew != d.drift_skew {
            t.insert("drift_skew", encode::int(self.drift_skew as usize));
        }
        if self.probe_every != d.probe_every {
            t.insert("probe_every", encode::int(self.probe_every as usize));
        }
        if !self.partition.is_empty() {
            t.insert(
                "partition",
                Value::Array(
                    self.partition
                        .iter()
                        .map(|p| {
                            let mut pt = Value::table();
                            match &p.kind {
                                PartitionKindSpec::Bipartition { axis, coord } => {
                                    pt.insert("kind", Value::Str("bipartition".into()));
                                    pt.insert("axis", Value::Str(axis.to_string()));
                                    pt.insert("coord", Value::Float(*coord));
                                }
                                PartitionKindSpec::Links { pairs } => {
                                    pt.insert("kind", Value::Str("links".into()));
                                    pt.insert(
                                        "pairs",
                                        Value::Array(
                                            pairs
                                                .iter()
                                                .map(|&(a, b)| {
                                                    Value::Array(vec![
                                                        encode::int(a),
                                                        encode::int(b),
                                                    ])
                                                })
                                                .collect(),
                                        ),
                                    );
                                }
                            }
                            pt.insert("at", encode::int(p.at as usize));
                            if let Some(h) = p.heal_at {
                                pt.insert("heal_at", encode::int(h as usize));
                            }
                            pt
                        })
                        .collect(),
                ),
            );
        }
        t
    }
}

/// One timed entry of the dynamic-event timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct EventSpec {
    /// Round after which the event fires (`0` = on the initial
    /// deployment, before any movement).
    pub round: usize,
    /// What happens.
    pub action: EventAction,
}

/// A dynamic event, declaratively.
#[derive(Debug, Clone, PartialEq)]
pub enum EventAction {
    /// Kills a random fraction of the current population (crash-stop).
    FailFraction {
        /// Fraction in `(0, 1)` of nodes to kill.
        fraction: f64,
    },
    /// Kills the listed node indices (as of the event round).
    FailNodes {
        /// Indices to kill.
        ids: Vec<usize>,
    },
    /// Kills every node inside a disk (localized destruction).
    FailRegion {
        /// Disk center.
        center: (f64, f64),
        /// Disk radius.
        radius: f64,
    },
    /// Kills nodes whose cumulative energy spend exceeds their battery
    /// capacity. Spend = `move_cost · distance_moved +
    /// rounds · sense_cost · E(r_i)` with `E` the
    /// [`laacad_wsn::energy::EnergyModel`] `coefficient · r^exponent`.
    DepleteBatteries {
        /// Per-node battery capacity.
        capacity: f64,
        /// Energy per unit distance moved.
        move_cost: f64,
        /// Energy per round per unit of `E(r_i)`.
        sense_cost: f64,
        /// Energy-model exponent `η` (2 = the paper's disk-area model).
        exponent: f64,
    },
    /// Inserts new nodes (churn / robots-assisted redeployment).
    Insert {
        /// Where the reinforcements appear.
        placement: PlacementSpec,
    },
    /// Changes the coverage requirement.
    SetK {
        /// The new `k`.
        k: usize,
    },
    /// Changes the step size.
    SetAlpha {
        /// The new `α`.
        alpha: f64,
    },
}

impl EventSpec {
    fn from_value(v: &Value, path: &str) -> Result<Self, SpecError> {
        let round = decode::req_usize(v, "round", path)?;
        let action = decode::req_str(v, "action", path)?;
        let action = match action.as_str() {
            "fail_fraction" => EventAction::FailFraction {
                fraction: decode::req_f64(v, "fraction", path)?,
            },
            "fail_nodes" => {
                let p = format!("{path}.ids");
                let ids = v
                    .get("ids")
                    .ok_or_else(|| DecodeError::new(&p, "missing required field"))?
                    .as_array()
                    .ok_or_else(|| DecodeError::new(&p, "expected array of integers"))?
                    .iter()
                    .enumerate()
                    .map(|(i, id)| decode::to_usize(id, &format!("{p}[{i}]")))
                    .collect::<Result<Vec<_>, _>>()?;
                EventAction::FailNodes { ids }
            }
            "fail_region" => EventAction::FailRegion {
                center: decode::req_pair(v, "center", path)?,
                radius: decode::req_f64(v, "radius", path)?,
            },
            "deplete_batteries" => EventAction::DepleteBatteries {
                capacity: decode::req_f64(v, "capacity", path)?,
                move_cost: decode::opt_f64(v, "move_cost", path)?.unwrap_or(1.0),
                sense_cost: decode::opt_f64(v, "sense_cost", path)?.unwrap_or(1.0),
                exponent: decode::opt_f64(v, "exponent", path)?.unwrap_or(2.0),
            },
            "insert" => EventAction::Insert {
                placement: PlacementSpec::from_value(
                    v.get("placement").ok_or_else(|| {
                        DecodeError::new(format!("{path}.placement"), "missing required field")
                    })?,
                    &format!("{path}.placement"),
                )?,
            },
            "set_k" => EventAction::SetK {
                k: decode::req_usize(v, "k", path)?,
            },
            "set_alpha" => EventAction::SetAlpha {
                alpha: decode::req_f64(v, "alpha", path)?,
            },
            other => {
                return Err(DecodeError::new(
                    format!("{path}.action"),
                    format!("unknown event action `{other}`"),
                )
                .into())
            }
        };
        Ok(EventSpec { round, action })
    }

    fn to_value(&self) -> Value {
        let mut t = Value::table();
        t.insert("round", encode::int(self.round));
        match &self.action {
            EventAction::FailFraction { fraction } => {
                t.insert("action", Value::Str("fail_fraction".into()));
                t.insert("fraction", Value::Float(*fraction));
            }
            EventAction::FailNodes { ids } => {
                t.insert("action", Value::Str("fail_nodes".into()));
                t.insert(
                    "ids",
                    Value::Array(ids.iter().map(|&i| encode::int(i)).collect()),
                );
            }
            EventAction::FailRegion { center, radius } => {
                t.insert("action", Value::Str("fail_region".into()));
                t.insert("center", encode::pair(*center));
                t.insert("radius", Value::Float(*radius));
            }
            EventAction::DepleteBatteries {
                capacity,
                move_cost,
                sense_cost,
                exponent,
            } => {
                t.insert("action", Value::Str("deplete_batteries".into()));
                t.insert("capacity", Value::Float(*capacity));
                t.insert("move_cost", Value::Float(*move_cost));
                t.insert("sense_cost", Value::Float(*sense_cost));
                t.insert("exponent", Value::Float(*exponent));
            }
            EventAction::Insert { placement } => {
                t.insert("action", Value::Str("insert".into()));
                t.insert("placement", placement.to_value());
            }
            EventAction::SetK { k } => {
                t.insert("action", Value::Str("set_k".into()));
                t.insert("k", encode::int(*k));
            }
            EventAction::SetAlpha { alpha } => {
                t.insert("action", Value::Str("set_alpha".into()));
                t.insert("alpha", Value::Float(*alpha));
            }
        }
        t
    }
}

/// Evaluation settings.
#[derive(Debug, Clone, PartialEq)]
pub struct EvaluationSpec {
    /// Grid samples for the final coverage verification.
    pub coverage_samples: usize,
    /// Energy-model exponent used for the load metrics.
    pub energy_exponent: f64,
    /// When non-zero, evaluate k-coverage with this many samples after
    /// **every** round and store the fraction in the round series —
    /// required for the recovery metrics (`time_to_recover`,
    /// `coverage_dip`) and off by default because it costs a coverage
    /// sweep per round.
    pub round_coverage_samples: usize,
    /// Covered-fraction threshold at which a post-event deployment
    /// counts as recovered (used by `time_to_recover`).
    pub recovery_target: f64,
}

impl Default for EvaluationSpec {
    fn default() -> Self {
        EvaluationSpec {
            coverage_samples: 4000,
            energy_exponent: 2.0,
            round_coverage_samples: 0,
            recovery_target: 0.95,
        }
    }
}

impl EvaluationSpec {
    fn from_value(v: &Value, path: &str) -> Result<Self, SpecError> {
        let d = EvaluationSpec::default();
        Ok(EvaluationSpec {
            coverage_samples: decode::opt_usize(v, "coverage_samples", path)?
                .unwrap_or(d.coverage_samples),
            energy_exponent: decode::opt_f64(v, "energy_exponent", path)?
                .unwrap_or(d.energy_exponent),
            round_coverage_samples: decode::opt_usize(v, "round_coverage_samples", path)?
                .unwrap_or(d.round_coverage_samples),
            recovery_target: decode::opt_f64(v, "recovery_target", path)?
                .unwrap_or(d.recovery_target),
        })
    }

    fn to_value(&self) -> Value {
        let d = EvaluationSpec::default();
        let mut t = Value::table();
        t.insert("coverage_samples", encode::int(self.coverage_samples));
        t.insert("energy_exponent", Value::Float(self.energy_exponent));
        if self.round_coverage_samples != d.round_coverage_samples {
            t.insert(
                "round_coverage_samples",
                encode::int(self.round_coverage_samples),
            );
        }
        if self.recovery_target != d.recovery_target {
            t.insert("recovery_target", Value::Float(self.recovery_target));
        }
        t
    }
}

/// A complete declarative scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (used in result records and file names).
    pub name: String,
    /// Human-readable description.
    pub description: String,
    /// The target area.
    pub region: RegionSpec,
    /// Initial placement.
    pub placement: PlacementSpec,
    /// Algorithm parameters.
    pub laacad: AlgorithmSpec,
    /// Dynamic-event timeline (sorted by round at build time).
    pub events: Vec<EventSpec>,
    /// Evaluation settings.
    pub evaluation: EvaluationSpec,
}

impl ScenarioSpec {
    /// A minimal uniform-placement scenario, useful as a programmatic
    /// starting point.
    pub fn uniform(name: impl Into<String>, n: usize, k: usize) -> Self {
        ScenarioSpec {
            name: name.into(),
            description: String::new(),
            region: RegionSpec::Named("unit_square".into()),
            placement: PlacementSpec::Uniform { n },
            laacad: AlgorithmSpec {
                k,
                ..AlgorithmSpec::default()
            },
            events: Vec::new(),
            evaluation: EvaluationSpec::default(),
        }
    }

    /// Decodes a spec from a parsed [`Value`] tree.
    pub fn from_value(v: &Value) -> Result<Self, SpecError> {
        let path = "scenario";
        let events = match v.get("events") {
            None => Vec::new(),
            Some(evs) => {
                let p = format!("{path}.events");
                evs.as_array()
                    .ok_or_else(|| DecodeError::new(&p, "expected array of event tables"))?
                    .iter()
                    .enumerate()
                    .map(|(i, e)| EventSpec::from_value(e, &format!("{p}[{i}]")))
                    .collect::<Result<Vec<_>, _>>()?
            }
        };
        let evaluation = match v.get("evaluation") {
            None => EvaluationSpec::default(),
            Some(e) => EvaluationSpec::from_value(e, &format!("{path}.evaluation"))?,
        };
        let region = RegionSpec::from_value(
            v.get("region")
                .ok_or_else(|| DecodeError::new("scenario.region", "missing required field"))?,
            &format!("{path}.region"),
        )?;
        let placement = PlacementSpec::from_value(
            v.get("placement")
                .ok_or_else(|| DecodeError::new("scenario.placement", "missing required field"))?,
            &format!("{path}.placement"),
        )?;
        let mut laacad = AlgorithmSpec::from_value(
            v.get("laacad")
                .ok_or_else(|| DecodeError::new("scenario.laacad", "missing required field"))?,
            &format!("{path}.laacad"),
        )?;
        if let Some(f) = v.get("faults") {
            laacad.faults = Some(FaultSpec::from_value(f, "faults")?);
        }
        Ok(ScenarioSpec {
            name: decode::req_str(v, "name", path)?,
            description: decode::opt_str(v, "description", path)?.unwrap_or_default(),
            region,
            placement,
            laacad,
            events,
            evaluation,
        })
    }

    /// Encodes the spec as a [`Value`] tree.
    pub fn to_value(&self) -> Value {
        let mut t = Value::table();
        t.insert("name", Value::Str(self.name.clone()));
        if !self.description.is_empty() {
            t.insert("description", Value::Str(self.description.clone()));
        }
        t.insert("region", self.region.to_value());
        t.insert("placement", self.placement.to_value());
        t.insert("laacad", self.laacad.to_value());
        if let Some(f) = &self.laacad.faults {
            t.insert("faults", f.to_value());
        }
        if !self.events.is_empty() {
            t.insert(
                "events",
                Value::Array(self.events.iter().map(|e| e.to_value()).collect()),
            );
        }
        t.insert("evaluation", self.evaluation.to_value());
        t
    }

    /// Parses a TOML scenario document.
    pub fn from_toml(text: &str) -> Result<Self, SpecError> {
        let v = crate::toml::parse(text).map_err(SpecError::Toml)?;
        Self::from_value(&v)
    }

    /// Serializes as a TOML document (round-trips through
    /// [`ScenarioSpec::from_toml`]).
    pub fn to_toml(&self) -> String {
        crate::toml::to_string(&self.to_value())
    }

    /// Parses a JSON scenario document.
    pub fn from_json(text: &str) -> Result<Self, SpecError> {
        let v = crate::json::parse(text).map_err(SpecError::Json)?;
        Self::from_value(&v)
    }

    /// Serializes as a JSON document.
    pub fn to_json(&self) -> String {
        crate::json::to_string(&self.to_value())
    }

    /// Loads a spec from a `.toml` or `.json` file (decided by
    /// extension; anything else tries TOML first, then JSON).
    pub fn from_path(path: &std::path::Path) -> Result<Self, SpecError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| SpecError::Build(format!("cannot read {}: {e}", path.display())))?;
        match path.extension().and_then(|e| e.to_str()) {
            Some("json") => Self::from_json(&text),
            Some("toml") => Self::from_toml(&text),
            _ => Self::from_toml(&text).or_else(|_| Self::from_json(&text)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spec() -> ScenarioSpec {
        ScenarioSpec {
            name: "failure-recovery".into(),
            description: "kill 20% mid-run".into(),
            region: RegionSpec::Named("unit_square".into()),
            placement: PlacementSpec::Uniform { n: 40 },
            laacad: AlgorithmSpec {
                k: 2,
                alpha: 0.6,
                max_rounds: 150,
                ..AlgorithmSpec::default()
            },
            events: vec![
                EventSpec {
                    round: 40,
                    action: EventAction::FailFraction { fraction: 0.2 },
                },
                EventSpec {
                    round: 60,
                    action: EventAction::Insert {
                        placement: PlacementSpec::Clustered {
                            n: 4,
                            center: (0.5, 0.5),
                            radius: 0.1,
                        },
                    },
                },
            ],
            evaluation: EvaluationSpec::default(),
        }
    }

    #[test]
    fn toml_round_trip() {
        let spec = sample_spec();
        let text = spec.to_toml();
        let back = ScenarioSpec::from_toml(&text).unwrap();
        assert_eq!(spec, back, "TOML:\n{text}");
    }

    #[test]
    fn json_round_trip() {
        let spec = sample_spec();
        let back = ScenarioSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn adversarial_fault_knobs_round_trip() {
        let mut spec = sample_spec();
        spec.laacad.faults = Some(FaultSpec {
            loss: 0.1,
            corruption_rate: 0.15,
            corruption_validate: false,
            quarantine_ticks: 48,
            corruption_tolerance: 0.3,
            partition: vec![
                PartitionSpec {
                    kind: PartitionKindSpec::Bipartition {
                        axis: 'y',
                        coord: 0.4,
                    },
                    at: 10,
                    heal_at: Some(90),
                },
                PartitionSpec {
                    kind: PartitionKindSpec::Links {
                        pairs: vec![(0, 3), (1, 7)],
                    },
                    at: 20,
                    heal_at: None,
                },
            ],
            backoff: BackoffSpec::Adaptive {
                cap: 32,
                jitter: 0.25,
            },
            drift_rate: 0.05,
            drift_skew: 3,
            probe_every: 4,
            ..FaultSpec::default()
        });
        let text = spec.to_toml();
        let back = ScenarioSpec::from_toml(&text).unwrap();
        assert_eq!(spec, back, "TOML:\n{text}");
        let back = ScenarioSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(spec, back);

        // The mapped plan carries every adversarial knob.
        let (plan, proto) = spec.laacad.faults.as_ref().unwrap().to_plan();
        let corruption = plan.corruption.expect("corruption enabled");
        assert_eq!(corruption.rate, 0.15);
        assert!(!corruption.validate);
        assert_eq!(plan.partitions.len(), 2);
        assert_eq!(
            plan.drift,
            Some(laacad_dist::Drift {
                rate: 0.05,
                skew: 3
            })
        );
        assert_eq!(
            proto.backoff,
            laacad_dist::Backoff::ExponentialJittered {
                cap: 32,
                jitter: 0.25
            }
        );
    }

    #[test]
    fn adversarial_fault_knobs_validate() {
        let base = "name = \"x\"\n[region]\nkind = \"square\"\nside = 1.0\n\
                    [placement]\nkind = \"uniform\"\nn = 8\n[laacad]\nk = 1\n";
        let bad_rate = format!("{base}[faults]\ncorruption_rate = 1.5\n");
        assert!(ScenarioSpec::from_toml(&bad_rate).is_err());
        let bad_drift = format!("{base}[faults]\ndrift_rate = 1.0\n");
        assert!(ScenarioSpec::from_toml(&bad_drift).is_err());
        let bad_backoff = format!("{base}[faults]\nbackoff = \"quadratic\"\n");
        assert!(ScenarioSpec::from_toml(&bad_backoff).is_err());
        let bad_axis = format!(
            "{base}[faults]\n[[faults.partition]]\nkind = \"bipartition\"\naxis = \"z\"\n\
             coord = 0.5\nat = 0\n"
        );
        assert!(ScenarioSpec::from_toml(&bad_axis).is_err());
    }

    #[test]
    fn coordinates_knob_round_trips_and_builds() {
        let mut spec = sample_spec();
        spec.laacad.coordinates =
            CoordinateMode::Ranging(laacad_wsn::ranging::RangingNoise::new(0.01, 0.002));
        let text = spec.to_toml();
        assert!(text.contains("coordinates = \"ranging\""), "TOML:\n{text}");
        let back = ScenarioSpec::from_toml(&text).unwrap();
        assert_eq!(spec, back, "TOML:\n{text}");
        let region = spec.region.build().unwrap();
        let config = spec.laacad.build(&region, 40, 7).unwrap();
        assert_eq!(config.coordinates, spec.laacad.coordinates);

        let bad = text.replace("ranging_rel = 0.01", "ranging_rel = -1.0");
        assert!(ScenarioSpec::from_toml(&bad).is_err());
        let unknown = text.replace("\"ranging\"", "\"gps\"");
        assert!(ScenarioSpec::from_toml(&unknown).is_err());
    }

    #[test]
    fn builds_region_placement_config() {
        let spec = sample_spec();
        let region = spec.region.build().unwrap();
        let pts = spec.placement.build(&region, 7).unwrap();
        assert_eq!(pts.len(), 40);
        assert!(pts.iter().all(|&p| region.contains(p)));
        let config = spec.laacad.build(&region, pts.len(), 7).unwrap();
        assert_eq!(config.k, 2);
        assert!(config.gamma > 0.0);
        assert!(config.epsilon > 0.0);
    }

    #[test]
    fn corner_placement_hugs_the_min_corner() {
        let region = RegionSpec::Named("unit_square".into()).build().unwrap();
        let pts = PlacementSpec::Corner { n: 30, radius: 0.1 }
            .build(&region, 3)
            .unwrap();
        assert!(pts.iter().all(|p| p.x < 0.35 && p.y < 0.35));
    }

    #[test]
    fn all_gallery_names_build() {
        for name in [
            "unit_square",
            "l_shape",
            "cross",
            "coast",
            "lakes",
            "corridor",
            "forest",
        ] {
            assert!(RegionSpec::Named(name.into()).build().is_ok(), "{name}");
        }
        assert!(RegionSpec::Named("atlantis".into()).build().is_err());
    }

    #[test]
    fn decode_errors_carry_paths() {
        let err = ScenarioSpec::from_toml("name = \"x\"\n").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("region"), "{msg}");
        let doc = "name = \"x\"\n[region]\nkind = \"sphere\"\n";
        let msg = ScenarioSpec::from_toml(doc).unwrap_err().to_string();
        assert!(msg.contains("region.kind"), "{msg}");
    }

    #[test]
    fn custom_placement_outside_region_rejected() {
        let region = RegionSpec::Square { side: 1.0 }.build().unwrap();
        let placement = PlacementSpec::Custom {
            points: vec![(0.5, 0.5), (2.0, 2.0)],
        };
        assert!(placement.build(&region, 0).is_err());
    }
}
