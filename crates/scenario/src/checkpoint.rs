//! Mid-run checkpointing of synchronous scenario runs.
//!
//! A [`ScenarioCheckpoint`] captures **everything** a running scenario
//! needs to continue: the engine state as a `laacad-snapshot/1` buffer
//! ([`laacad::Session::snapshot`]), the timeline hook's resumable state
//! (next event index, victim/placement RNG state, applied-event log),
//! the per-round coverage-probe series, and the loop verdict of the
//! checkpointed round. Resuming from a checkpoint and running to
//! completion produces a [`crate::ScenarioOutcome`] **bit-identical**
//! to the uninterrupted run — pinned by this module's tests and the
//! `checkpoint_resume` integration test.
//!
//! The wire format is `laacad-checkpoint/1`: the magic line, then the
//! length-prefixed session snapshot, then the hook and probe sections,
//! all integers little-endian u64 and floats as IEEE-754 bit patterns
//! (the same conventions as the session snapshot it embeds).
//!
//! Campaigns opt in with `checkpoint_every = <rounds>` at the top level
//! of the campaign document; the runner then writes
//! `<name>.cell<index>.checkpoint` beside the result files and resumes
//! from it when a killed campaign is rerun (see
//! [`crate::run_campaign_observed`]).

use crate::engine::{assemble_sync_outcome, build_scenario, drive_rounds, CoverageProbe};
use crate::events::{AppliedEvent, TimelineHook};
use crate::spec::{ScenarioSpec, SpecError};
use crate::ScenarioOutcome;
use laacad::{ObservedRound, Recorder, Session, SessionBuilder};

/// First bytes of every serialized checkpoint; the trailing newline
/// makes `head -1` on a checkpoint file print the version.
pub const CHECKPOINT_MAGIC: &[u8] = b"laacad-checkpoint/1\n";

/// The resumable state of a synchronous scenario run, captured after a
/// completed round (events fired, probe sampled).
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioCheckpoint {
    /// Round the checkpoint was taken after (1-based).
    round: usize,
    /// `laacad-snapshot/1` bytes of the session.
    session: Vec<u8>,
    /// Loop verdict of the checkpointed round: an observer demanded a
    /// stop. Needed so resume does not step past a round the
    /// uninterrupted run ended on.
    stop: bool,
    /// Loop verdict: an observer overrode the convergence stop.
    keep_running: bool,
    /// Timeline hook: index of the next unfired event.
    hook_next: usize,
    /// Timeline hook: SplitMix64 state of the victim/placement stream.
    hook_rng: u64,
    /// Timeline hook: events applied (or skipped) so far.
    hook_log: Vec<AppliedEvent>,
    /// Coverage-probe series `(round, covered_fraction)` so far.
    probe: Vec<(usize, f64)>,
}

impl ScenarioCheckpoint {
    /// The round this checkpoint was taken after.
    pub fn round(&self) -> usize {
        self.round
    }

    fn capture(
        sim: &Session,
        probe: &CoverageProbe,
        hook: &TimelineHook,
        verdict: &ObservedRound,
    ) -> Self {
        let (hook_next, hook_rng, log) = hook.checkpoint();
        ScenarioCheckpoint {
            round: verdict.delta.report.round,
            session: sim.snapshot(),
            stop: verdict.stop,
            keep_running: verdict.keep_running,
            hook_next,
            hook_rng,
            hook_log: log.to_vec(),
            probe: probe.series.clone(),
        }
    }

    /// Serializes as a `laacad-checkpoint/1` buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(CHECKPOINT_MAGIC.len() + 64 + self.session.len());
        out.extend_from_slice(CHECKPOINT_MAGIC);
        put_u64(&mut out, self.round as u64);
        put_u64(&mut out, self.session.len() as u64);
        out.extend_from_slice(&self.session);
        out.push(self.stop as u8);
        out.push(self.keep_running as u8);
        put_u64(&mut out, self.hook_next as u64);
        put_u64(&mut out, self.hook_rng);
        put_u64(&mut out, self.hook_log.len() as u64);
        for e in &self.hook_log {
            put_u64(&mut out, e.round as u64);
            put_str(&mut out, &e.action);
            put_u64(&mut out, e.removed as u64);
            put_u64(&mut out, e.inserted as u64);
            match &e.skipped {
                None => out.push(0),
                Some(reason) => {
                    out.push(1);
                    put_str(&mut out, reason);
                }
            }
        }
        put_u64(&mut out, self.probe.len() as u64);
        for &(round, fraction) in &self.probe {
            put_u64(&mut out, round as u64);
            put_u64(&mut out, fraction.to_bits());
        }
        out
    }

    /// Deserializes a `laacad-checkpoint/1` buffer.
    ///
    /// # Errors
    ///
    /// [`SpecError::Build`] on a wrong magic line, truncation, trailing
    /// bytes, or malformed sections. The embedded session snapshot is
    /// *not* validated here — [`resume_scenario`] does that when it
    /// restores the session.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SpecError> {
        let corrupt = |m: &str| SpecError::Build(format!("checkpoint: {m}"));
        if bytes.len() < CHECKPOINT_MAGIC.len()
            || &bytes[..CHECKPOINT_MAGIC.len()] != CHECKPOINT_MAGIC
        {
            return Err(corrupt("not a laacad-checkpoint/1 buffer"));
        }
        let mut r = Cursor {
            bytes,
            at: CHECKPOINT_MAGIC.len(),
        };
        let round = r.take_u64()? as usize;
        let session_len = r.take_u64()? as usize;
        let session = r.take_bytes(session_len)?.to_vec();
        let stop = r.take_bool()?;
        let keep_running = r.take_bool()?;
        let hook_next = r.take_u64()? as usize;
        let hook_rng = r.take_u64()?;
        let log_len = r.take_count(8)?;
        let mut hook_log = Vec::with_capacity(log_len);
        for _ in 0..log_len {
            let round = r.take_u64()? as usize;
            let action = r.take_str()?;
            let removed = r.take_u64()? as usize;
            let inserted = r.take_u64()? as usize;
            let skipped = if r.take_bool()? {
                Some(r.take_str()?)
            } else {
                None
            };
            hook_log.push(AppliedEvent {
                round,
                action,
                removed,
                inserted,
                skipped,
            });
        }
        let probe_len = r.take_count(16)?;
        let mut probe = Vec::with_capacity(probe_len);
        for _ in 0..probe_len {
            let round = r.take_u64()? as usize;
            let fraction = f64::from_bits(r.take_u64()?);
            probe.push((round, fraction));
        }
        if r.at != bytes.len() {
            return Err(corrupt("trailing bytes after the probe section"));
        }
        Ok(ScenarioCheckpoint {
            round,
            session,
            stop,
            keep_running,
            hook_next,
            hook_rng,
            hook_log,
            probe,
        })
    }
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Cursor<'_> {
    fn take_bytes(&mut self, len: usize) -> Result<&[u8], SpecError> {
        if self.bytes.len() - self.at < len {
            return Err(SpecError::Build("checkpoint: truncated buffer".into()));
        }
        let slice = &self.bytes[self.at..self.at + len];
        self.at += len;
        Ok(slice)
    }

    fn take_u64(&mut self) -> Result<u64, SpecError> {
        let b = self.take_bytes(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn take_bool(&mut self) -> Result<bool, SpecError> {
        match self.take_bytes(1)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(SpecError::Build(format!(
                "checkpoint: invalid bool byte {other}"
            ))),
        }
    }

    /// An element count, bounded by the bytes actually remaining so a
    /// corrupt length cannot drive a huge allocation.
    fn take_count(&mut self, elem_bytes: usize) -> Result<usize, SpecError> {
        let count = self.take_u64()? as usize;
        if count > (self.bytes.len() - self.at) / elem_bytes.max(1) {
            return Err(SpecError::Build(
                "checkpoint: section count exceeds the remaining bytes".into(),
            ));
        }
        Ok(count)
    }

    fn take_str(&mut self) -> Result<String, SpecError> {
        let len = self.take_count(1)?;
        let bytes = self.take_bytes(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SpecError::Build("checkpoint: invalid UTF-8 string".into()))
    }
}

fn reject_faults(spec: &ScenarioSpec) -> Result<(), SpecError> {
    if spec.laacad.faults.is_some() {
        return Err(SpecError::Build(
            "scenarios with a [faults] section run on the asynchronous \
             executor, which does not support checkpointing"
                .into(),
        ));
    }
    Ok(())
}

/// Runs `spec` at `seed` exactly like [`crate::run_scenario`], handing a
/// [`ScenarioCheckpoint`] to `sink` after every `every`-th round
/// (`every = 0` never checkpoints). The outcome is bit-identical to the
/// plain runner — checkpoint capture only reads state.
///
/// # Errors
///
/// As [`crate::run_scenario`], plus [`SpecError::Build`] for
/// `[faults]`-bearing specs (the asynchronous executor has no
/// snapshot support) and whatever `sink` returns.
pub fn run_scenario_checkpointed(
    spec: &ScenarioSpec,
    seed: u64,
    every: usize,
    sink: &mut dyn FnMut(&ScenarioCheckpoint) -> Result<(), SpecError>,
) -> Result<ScenarioOutcome, SpecError> {
    run_checkpointed_impl(spec, seed, every, None, sink, None).map(|(outcome, _)| outcome)
}

/// Continues a run from `checkpoint` to completion, checkpointing
/// onwards with the same cadence. The outcome — rounds, events,
/// summary, warnings, everything — is **bit-identical** to the run that
/// produced the checkpoint had it never been interrupted.
///
/// # Errors
///
/// As [`run_scenario_checkpointed`], plus [`SpecError::Build`] when the
/// embedded session snapshot fails validation (corrupt or
/// version-mismatched checkpoint files).
pub fn resume_scenario(
    spec: &ScenarioSpec,
    seed: u64,
    checkpoint: &ScenarioCheckpoint,
    every: usize,
    sink: &mut dyn FnMut(&ScenarioCheckpoint) -> Result<(), SpecError>,
) -> Result<ScenarioOutcome, SpecError> {
    run_checkpointed_impl(spec, seed, every, Some(checkpoint), sink, None)
        .map(|(outcome, _)| outcome)
}

/// The shared checkpointed runner: fresh start or resume, with an
/// optional telemetry recorder riding along (the campaign runner uses
/// it so `checkpoint_every` composes with `laacad.telemetry`).
pub(crate) fn run_checkpointed_impl(
    spec: &ScenarioSpec,
    seed: u64,
    every: usize,
    resume: Option<&ScenarioCheckpoint>,
    sink: &mut dyn FnMut(&ScenarioCheckpoint) -> Result<(), SpecError>,
    recorder: Option<Box<dyn Recorder>>,
) -> Result<(ScenarioOutcome, Option<Box<dyn Recorder>>), SpecError> {
    reject_faults(spec)?;
    let (mut sim, mut hook, mut probe, resumed_done) = match resume {
        None => {
            let (mut sim, mut hook) = build_scenario(spec, seed)?;
            // Round-0 events act on the initial deployment, before any
            // movement.
            hook.fire_due(&mut sim, 0);
            let probe = CoverageProbe {
                samples: spec.evaluation.round_coverage_samples,
                series: Vec::new(),
            };
            (sim, hook, probe, false)
        }
        Some(ckpt) => {
            let sim = SessionBuilder::restore(&ckpt.session).map_err(|e| {
                SpecError::Build(format!("cannot restore the checkpointed session: {e}"))
            })?;
            let hook = TimelineHook::restore(
                &spec.events,
                ckpt.hook_next,
                ckpt.hook_rng,
                ckpt.hook_log.clone(),
            );
            let probe = CoverageProbe {
                samples: spec.evaluation.round_coverage_samples,
                series: ckpt.probe.clone(),
            };
            // The interrupted run may have ended on the checkpointed
            // round; re-applying its loop verdict here keeps resume from
            // stepping one round further than the uninterrupted run.
            let done = ckpt.stop || (sim.is_converged() && !ckpt.keep_running);
            (sim, hook, probe, done)
        }
    };
    if let Some(r) = recorder {
        sim.set_recorder(r);
    }
    let summary = if resumed_done {
        sim.finalize();
        sim.summarize()
    } else {
        drive_rounds(
            &mut sim,
            &mut probe,
            &mut hook,
            |sim, probe, hook, verdict| {
                if every > 0 && verdict.delta.report.round % every == 0 {
                    sink(&ScenarioCheckpoint::capture(sim, probe, hook, verdict))?;
                }
                Ok(())
            },
        )?
    };
    Ok(assemble_sync_outcome(sim, hook, probe, spec, seed, summary))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_scenario;
    use crate::spec::{EventAction, EventSpec, PlacementSpec, ScenarioSpec};

    /// A failure+churn scenario exercising every checkpointed component:
    /// RNG-consuming events on both sides of the checkpoint and a
    /// populated probe series.
    fn churn_spec() -> ScenarioSpec {
        let mut spec = ScenarioSpec::uniform("ckpt", 24, 1);
        spec.laacad.max_rounds = 60;
        spec.evaluation.round_coverage_samples = 400;
        spec.evaluation.coverage_samples = 400;
        spec.events = vec![
            EventSpec {
                round: 3,
                action: EventAction::FailFraction { fraction: 0.2 },
            },
            EventSpec {
                round: 12,
                action: EventAction::Insert {
                    placement: PlacementSpec::Clustered {
                        n: 5,
                        center: (0.5, 0.5),
                        radius: 0.1,
                    },
                },
            },
            EventSpec {
                round: 20,
                action: EventAction::FailFraction { fraction: 0.1 },
            },
        ];
        spec
    }

    #[test]
    fn checkpointed_run_matches_plain_run() {
        let spec = churn_spec();
        let plain = run_scenario(&spec, 41).unwrap();
        let mut seen = 0usize;
        let checkpointed = run_scenario_checkpointed(&spec, 41, 5, &mut |_| {
            seen += 1;
            Ok(())
        })
        .unwrap();
        assert!(seen > 1, "expected several checkpoints, saw {seen}");
        assert_eq!(plain, checkpointed);
    }

    #[test]
    fn resume_from_every_checkpoint_is_bit_identical() {
        let spec = churn_spec();
        let plain = run_scenario(&spec, 41).unwrap();
        let mut checkpoints = Vec::new();
        run_scenario_checkpointed(&spec, 41, 7, &mut |c| {
            checkpoints.push(c.clone());
            Ok(())
        })
        .unwrap();
        assert!(checkpoints.len() > 1);
        for ckpt in &checkpoints {
            let resumed = resume_scenario(&spec, 41, ckpt, 0, &mut |_| Ok(())).unwrap();
            assert_eq!(plain, resumed, "resume from round {}", ckpt.round());
        }
    }

    #[test]
    fn bytes_round_trip_and_reject_corruption() {
        let spec = churn_spec();
        let mut first = None;
        run_scenario_checkpointed(&spec, 9, 10, &mut |c| {
            if first.is_none() {
                first = Some(c.clone());
            }
            Ok(())
        })
        .unwrap();
        let ckpt = first.expect("a checkpoint fired");
        let bytes = ckpt.to_bytes();
        assert_eq!(ScenarioCheckpoint::from_bytes(&bytes).unwrap(), ckpt);
        assert!(ScenarioCheckpoint::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] ^= 0xFF;
        assert!(ScenarioCheckpoint::from_bytes(&wrong_magic).is_err());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(ScenarioCheckpoint::from_bytes(&trailing).is_err());
        // A resumed copy that went through bytes behaves identically.
        let decoded = ScenarioCheckpoint::from_bytes(&bytes).unwrap();
        let a = resume_scenario(&spec, 9, &ckpt, 0, &mut |_| Ok(())).unwrap();
        let b = resume_scenario(&spec, 9, &decoded, 0, &mut |_| Ok(())).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn faults_specs_are_rejected() {
        let mut spec = ScenarioSpec::uniform("f", 10, 1);
        spec.laacad.faults = Some(crate::spec::FaultSpec::default());
        let err = run_scenario_checkpointed(&spec, 1, 5, &mut |_| Ok(())).unwrap_err();
        assert!(err.to_string().contains("checkpointing"), "{err}");
    }
}
