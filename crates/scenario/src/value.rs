//! A small dynamic value tree shared by the TOML and JSON front-ends.
//!
//! The build environment is offline, so the workspace cannot depend on
//! `serde`/`toml`/`serde_json`; scenario specs instead decode through
//! this hand-rolled [`Value`] type. Both parsers produce it, both
//! serializers consume it, and `spec.rs` maps it to and from the typed
//! scenario structs.

use std::collections::BTreeMap;
use std::fmt;

/// A dynamically typed configuration value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A boolean.
    Bool(bool),
    /// A 64-bit integer.
    Int(i64),
    /// A 64-bit float.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered list.
    Array(Vec<Value>),
    /// A string-keyed table (sorted for deterministic serialization).
    Table(BTreeMap<String, Value>),
}

/// Error produced while decoding a [`Value`] into a typed spec.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodeError {
    /// Dotted path of the offending field (e.g. `events[2].round`).
    pub path: String,
    /// What went wrong.
    pub message: String,
}

impl DecodeError {
    /// A decode error at `path`.
    pub fn new(path: impl Into<String>, message: impl Into<String>) -> Self {
        DecodeError {
            path: path.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "at `{}`: {}", self.path, self.message)
    }
}

impl std::error::Error for DecodeError {}

impl Value {
    /// An empty table.
    pub fn table() -> Value {
        Value::Table(BTreeMap::new())
    }

    /// The type name, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Table(_) => "table",
        }
    }

    /// Table lookup (`None` for missing keys or non-tables).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Table(map) => map.get(key),
            _ => None,
        }
    }

    /// Inserts into a table value.
    ///
    /// # Panics
    ///
    /// Panics when `self` is not a table.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) {
        match self {
            Value::Table(map) => {
                map.insert(key.into(), value);
            }
            other => panic!("insert into non-table value ({})", other.type_name()),
        }
    }

    /// The boolean payload, if any.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer payload, if any.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The numeric payload; integers coerce to floats.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The string payload, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array payload, if any.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The table payload, if any.
    pub fn as_table(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Table(map) => Some(map),
            _ => None,
        }
    }
}

/// Typed field accessors with path-carrying errors.
pub mod decode {
    use super::{DecodeError, Value};

    fn missing(path: &str) -> DecodeError {
        DecodeError::new(path, "missing required field")
    }

    fn wrong(path: &str, want: &str, got: &Value) -> DecodeError {
        DecodeError::new(path, format!("expected {want}, found {}", got.type_name()))
    }

    /// Required string field.
    pub fn req_str(table: &Value, key: &str, path: &str) -> Result<String, DecodeError> {
        let p = format!("{path}.{key}");
        let v = table.get(key).ok_or_else(|| missing(&p))?;
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| wrong(&p, "string", v))
    }

    /// Optional string field.
    pub fn opt_str(table: &Value, key: &str, path: &str) -> Result<Option<String>, DecodeError> {
        match table.get(key) {
            None => Ok(None),
            Some(v) => v
                .as_str()
                .map(|s| Some(s.to_string()))
                .ok_or_else(|| wrong(&format!("{path}.{key}"), "string", v)),
        }
    }

    /// Required float (integers coerce).
    pub fn req_f64(table: &Value, key: &str, path: &str) -> Result<f64, DecodeError> {
        let p = format!("{path}.{key}");
        let v = table.get(key).ok_or_else(|| missing(&p))?;
        v.as_f64().ok_or_else(|| wrong(&p, "number", v))
    }

    /// Optional float (integers coerce).
    pub fn opt_f64(table: &Value, key: &str, path: &str) -> Result<Option<f64>, DecodeError> {
        match table.get(key) {
            None => Ok(None),
            Some(v) => v
                .as_f64()
                .map(Some)
                .ok_or_else(|| wrong(&format!("{path}.{key}"), "number", v)),
        }
    }

    /// Optional boolean field.
    pub fn opt_bool(table: &Value, key: &str, path: &str) -> Result<Option<bool>, DecodeError> {
        match table.get(key) {
            None => Ok(None),
            Some(v) => v
                .as_bool()
                .map(Some)
                .ok_or_else(|| wrong(&format!("{path}.{key}"), "bool", v)),
        }
    }

    /// Required non-negative integer.
    pub fn req_usize(table: &Value, key: &str, path: &str) -> Result<usize, DecodeError> {
        let p = format!("{path}.{key}");
        let v = table.get(key).ok_or_else(|| missing(&p))?;
        to_usize(v, &p)
    }

    /// Optional non-negative integer.
    pub fn opt_usize(table: &Value, key: &str, path: &str) -> Result<Option<usize>, DecodeError> {
        match table.get(key) {
            None => Ok(None),
            Some(v) => to_usize(v, &format!("{path}.{key}")).map(Some),
        }
    }

    /// Converts a [`Value`] to `usize`.
    pub fn to_usize(v: &Value, path: &str) -> Result<usize, DecodeError> {
        match v.as_i64() {
            Some(i) if i >= 0 => Ok(i as usize),
            Some(i) => Err(DecodeError::new(
                path,
                format!("expected non-negative integer, found {i}"),
            )),
            None => Err(wrong(path, "integer", v)),
        }
    }

    /// An `(x, y)` coordinate pair encoded as a two-element array.
    pub fn req_pair(table: &Value, key: &str, path: &str) -> Result<(f64, f64), DecodeError> {
        let p = format!("{path}.{key}");
        let v = table.get(key).ok_or_else(|| missing(&p))?;
        to_pair(v, &p)
    }

    /// Converts a two-element numeric array to an `(x, y)` pair.
    pub fn to_pair(v: &Value, path: &str) -> Result<(f64, f64), DecodeError> {
        let items = v.as_array().ok_or_else(|| wrong(path, "[x, y] array", v))?;
        if items.len() != 2 {
            return Err(DecodeError::new(
                path,
                format!("expected 2 coordinates, found {}", items.len()),
            ));
        }
        let x = items[0]
            .as_f64()
            .ok_or_else(|| wrong(&format!("{path}[0]"), "number", &items[0]))?;
        let y = items[1]
            .as_f64()
            .ok_or_else(|| wrong(&format!("{path}[1]"), "number", &items[1]))?;
        Ok((x, y))
    }

    /// A list of `(x, y)` pairs.
    pub fn to_pairs(v: &Value, path: &str) -> Result<Vec<(f64, f64)>, DecodeError> {
        let items = v
            .as_array()
            .ok_or_else(|| wrong(path, "array of [x, y]", v))?;
        items
            .iter()
            .enumerate()
            .map(|(i, item)| to_pair(item, &format!("{path}[{i}]")))
            .collect()
    }
}

/// Encoding helpers used by `spec.rs`.
pub mod encode {
    use super::Value;

    /// A `(x, y)` pair as a two-element array.
    pub fn pair(p: (f64, f64)) -> Value {
        Value::Array(vec![Value::Float(p.0), Value::Float(p.1)])
    }

    /// A list of `(x, y)` pairs.
    pub fn pairs(ps: &[(f64, f64)]) -> Value {
        Value::Array(ps.iter().map(|&p| pair(p)).collect())
    }

    /// A `usize` as an integer value.
    pub fn int(n: usize) -> Value {
        Value::Int(n as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_and_coercion() {
        let mut t = Value::table();
        t.insert("a", Value::Int(3));
        t.insert("b", Value::Float(0.5));
        assert_eq!(t.get("a").unwrap().as_f64(), Some(3.0));
        assert_eq!(t.get("b").unwrap().as_f64(), Some(0.5));
        assert_eq!(t.get("b").unwrap().as_i64(), None);
        assert_eq!(decode::req_usize(&t, "a", "root").unwrap(), 3);
        assert!(decode::req_usize(&t, "zzz", "root").is_err());
    }

    #[test]
    fn pair_decoding() {
        let v = Value::Array(vec![Value::Float(1.5), Value::Int(2)]);
        assert_eq!(decode::to_pair(&v, "p").unwrap(), (1.5, 2.0));
        let bad = Value::Array(vec![Value::Float(1.5)]);
        assert!(decode::to_pair(&bad, "p").is_err());
    }
}
