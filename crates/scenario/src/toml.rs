//! A practical TOML subset — parser and serializer over [`Value`].
//!
//! Supports everything the scenario specs use: bare/quoted keys,
//! `key = value` pairs, `[table]` and `[[array-of-tables]]` headers,
//! strings with escapes, integers (with `_` separators), floats,
//! booleans, (possibly multi-line) arrays, inline tables, and `#`
//! comments. Not supported (and not needed here): dotted keys, dates,
//! multi-line strings, and preserving key order (tables sort their keys).

use crate::value::Value;
use std::collections::BTreeMap;
use std::fmt;

/// Parse error with a 1-based line number.
#[derive(Debug, Clone, PartialEq)]
pub struct TomlError {
    /// 1-based line where parsing failed.
    pub line: usize,
    /// Problem description.
    pub message: String,
}

impl TomlError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        TomlError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for TomlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TOML parse error on line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for TomlError {}

/// Parses a TOML document into a [`Value::Table`].
pub fn parse(text: &str) -> Result<Value, TomlError> {
    Parser::new(text).document()
}

struct Parser<'a> {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    _text: &'a str,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            chars: text.chars().collect(),
            pos: 0,
            line: 1,
            _text: text,
        }
    }

    fn err(&self, message: impl Into<String>) -> TomlError {
        TomlError::new(self.line, message)
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    /// Skips spaces/tabs and comments, NOT newlines.
    fn skip_inline_ws(&mut self) {
        while let Some(c) = self.peek() {
            match c {
                ' ' | '\t' | '\r' => {
                    self.bump();
                }
                '#' => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    /// Skips all whitespace including newlines and comments.
    fn skip_ws(&mut self) {
        loop {
            self.skip_inline_ws();
            if self.peek() == Some('\n') {
                self.bump();
            } else {
                break;
            }
        }
    }

    fn expect_line_end(&mut self) -> Result<(), TomlError> {
        self.skip_inline_ws();
        match self.peek() {
            None => Ok(()),
            Some('\n') => {
                self.bump();
                Ok(())
            }
            Some(c) => Err(self.err(format!("expected end of line, found `{c}`"))),
        }
    }

    fn document(&mut self) -> Result<Value, TomlError> {
        let mut root = BTreeMap::new();
        // Path of the table currently receiving keys; empty = root.
        let mut current: Vec<String> = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                None => break,
                Some('[') => {
                    self.bump();
                    let array_of_tables = self.peek() == Some('[');
                    if array_of_tables {
                        self.bump();
                    }
                    let path = self.key_path(']')?;
                    if self.bump() != Some(']') {
                        return Err(self.err("expected `]`"));
                    }
                    if array_of_tables && self.bump() != Some(']') {
                        return Err(self.err("expected `]]`"));
                    }
                    self.expect_line_end()?;
                    if array_of_tables {
                        push_array_table(&mut root, &path).map_err(|m| self.err(m))?;
                    } else {
                        ensure_table(&mut root, &path).map_err(|m| self.err(m))?;
                    }
                    current = path;
                }
                Some(_) => {
                    let key = self.key()?;
                    self.skip_inline_ws();
                    if self.bump() != Some('=') {
                        return Err(self.err(format!("expected `=` after key `{key}`")));
                    }
                    self.skip_inline_ws();
                    let value = self.value()?;
                    self.expect_line_end()?;
                    let table = resolve_mut(&mut root, &current).map_err(|m| self.err(m))?;
                    if table.insert(key.clone(), value).is_some() {
                        return Err(self.err(format!("duplicate key `{key}`")));
                    }
                }
            }
        }
        Ok(Value::Table(root))
    }

    /// A dotted path of keys, terminated by `stop` (not consumed).
    fn key_path(&mut self, stop: char) -> Result<Vec<String>, TomlError> {
        let mut path = Vec::new();
        loop {
            self.skip_inline_ws();
            path.push(self.key()?);
            self.skip_inline_ws();
            match self.peek() {
                Some('.') => {
                    self.bump();
                }
                Some(c) if c == stop => break,
                other => {
                    return Err(self.err(format!("unexpected {other:?} in table header")));
                }
            }
        }
        Ok(path)
    }

    fn key(&mut self) -> Result<String, TomlError> {
        match self.peek() {
            Some('"') => self.string(),
            Some(c) if c.is_ascii_alphanumeric() || c == '_' || c == '-' => {
                let mut s = String::new();
                while let Some(c) = self.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                        s.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                Ok(s)
            }
            other => Err(self.err(format!("expected key, found {other:?}"))),
        }
    }

    fn string(&mut self) -> Result<String, TomlError> {
        if self.bump() != Some('"') {
            return Err(self.err("expected `\"`"));
        }
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some('"') => break,
                Some('\\') => match self.bump() {
                    Some('n') => s.push('\n'),
                    Some('t') => s.push('\t'),
                    Some('r') => s.push('\r'),
                    Some('"') => s.push('"'),
                    Some('\\') => s.push('\\'),
                    Some('u') => {
                        let mut code = String::new();
                        for _ in 0..4 {
                            code.push(self.bump().ok_or_else(|| self.err("bad \\u escape"))?);
                        }
                        let n = u32::from_str_radix(&code, 16)
                            .map_err(|_| self.err(format!("bad \\u escape `{code}`")))?;
                        s.push(char::from_u32(n).ok_or_else(|| self.err("bad \\u code point"))?);
                    }
                    other => return Err(self.err(format!("bad escape {other:?}"))),
                },
                Some(c) => s.push(c),
            }
        }
        Ok(s)
    }

    fn value(&mut self) -> Result<Value, TomlError> {
        match self.peek() {
            Some('"') => Ok(Value::Str(self.string()?)),
            Some('[') => self.array(),
            Some('{') => self.inline_table(),
            Some('t') | Some('f') => self.boolean(),
            Some(c) if c == '+' || c == '-' || c.is_ascii_digit() => self.number(),
            other => Err(self.err(format!("expected value, found {other:?}"))),
        }
    }

    fn boolean(&mut self) -> Result<Value, TomlError> {
        let mut word = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphabetic() {
                word.push(c);
                self.bump();
            } else {
                break;
            }
        }
        match word.as_str() {
            "true" => Ok(Value::Bool(true)),
            "false" => Ok(Value::Bool(false)),
            other => Err(self.err(format!("expected boolean, found `{other}`"))),
        }
    }

    fn number(&mut self) -> Result<Value, TomlError> {
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, '+' | '-' | '.' | 'e' | 'E' | '_') {
                if c != '_' {
                    text.push(c);
                }
                self.bump();
            } else {
                break;
            }
        }
        if text.contains('.') || text.contains('e') || text.contains('E') {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err(format!("invalid float `{text}`")))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| self.err(format!("invalid integer `{text}`")))
        }
    }

    fn array(&mut self) -> Result<Value, TomlError> {
        if self.bump() != Some('[') {
            return Err(self.err("expected `[`"));
        }
        let mut items = Vec::new();
        loop {
            self.skip_ws();
            if self.peek() == Some(']') {
                self.bump();
                break;
            }
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(',') => {
                    self.bump();
                }
                Some(']') => {}
                other => return Err(self.err(format!("expected `,` or `]`, found {other:?}"))),
            }
        }
        Ok(Value::Array(items))
    }

    fn inline_table(&mut self) -> Result<Value, TomlError> {
        if self.bump() != Some('{') {
            return Err(self.err("expected `{`"));
        }
        let mut map = BTreeMap::new();
        loop {
            self.skip_inline_ws();
            if self.peek() == Some('}') {
                self.bump();
                break;
            }
            let key = self.key()?;
            self.skip_inline_ws();
            if self.bump() != Some('=') {
                return Err(self.err("expected `=` in inline table"));
            }
            self.skip_inline_ws();
            let value = self.value()?;
            if map.insert(key.clone(), value).is_some() {
                return Err(self.err(format!("duplicate key `{key}` in inline table")));
            }
            self.skip_inline_ws();
            match self.peek() {
                Some(',') => {
                    self.bump();
                }
                Some('}') => {}
                other => return Err(self.err(format!("expected `,` or `}}`, found {other:?}"))),
            }
        }
        Ok(Value::Table(map))
    }
}

type Table = BTreeMap<String, Value>;

/// Walks (creating as needed) to the table at `path`.
fn ensure_table<'t>(root: &'t mut Table, path: &[String]) -> Result<&'t mut Table, String> {
    let mut cur = root;
    for key in path {
        let entry = cur
            .entry(key.clone())
            .or_insert_with(|| Value::Table(BTreeMap::new()));
        cur = match entry {
            Value::Table(map) => map,
            Value::Array(items) => match items.last_mut() {
                Some(Value::Table(map)) => map,
                _ => return Err(format!("`{key}` is not a table")),
            },
            _ => return Err(format!("`{key}` is not a table")),
        };
    }
    Ok(cur)
}

/// Appends a fresh table to the array-of-tables at `path`.
fn push_array_table(root: &mut Table, path: &[String]) -> Result<(), String> {
    let (last, parents) = path.split_last().expect("non-empty header path");
    let parent = ensure_table(root, parents)?;
    let entry = parent
        .entry(last.clone())
        .or_insert_with(|| Value::Array(Vec::new()));
    match entry {
        Value::Array(items) => {
            items.push(Value::Table(BTreeMap::new()));
            Ok(())
        }
        _ => Err(format!("`{last}` is not an array of tables")),
    }
}

/// Resolves the table at `path` for key insertion (must already exist).
fn resolve_mut<'t>(root: &'t mut Table, path: &[String]) -> Result<&'t mut Table, String> {
    ensure_table(root, path)
}

/// Serializes a [`Value::Table`] as a TOML document.
///
/// Layout: scalar and scalar-array keys first (in sorted order), then
/// `[sub.table]` sections, then `[[array.of.tables]]` sections. Guaranteed
/// to round-trip through [`parse`] for values produced by the spec
/// encoders (no heterogeneous arrays mixing tables and scalars).
pub fn to_string(value: &Value) -> String {
    let mut out = String::new();
    let table = match value {
        Value::Table(map) => map,
        other => panic!("TOML document must be a table, got {}", other.type_name()),
    };
    write_table(&mut out, table, &mut Vec::new());
    out
}

fn is_table_array(v: &Value) -> bool {
    matches!(v, Value::Array(items) if !items.is_empty() && items.iter().all(|x| matches!(x, Value::Table(_))))
}

fn write_table(out: &mut String, table: &Table, path: &mut Vec<String>) {
    // 1. Plain key/value pairs.
    for (key, v) in table {
        match v {
            Value::Table(_) => {}
            v if is_table_array(v) => {}
            v => {
                out.push_str(&format!("{} = {}\n", key_str(key), scalar(v)));
            }
        }
    }
    // 2. Sub-tables.
    for (key, v) in table {
        if let Value::Table(sub) = v {
            path.push(key.clone());
            out.push_str(&format!("\n[{}]\n", path_str(path)));
            write_table(out, sub, path);
            path.pop();
        }
    }
    // 3. Arrays of tables.
    for (key, v) in table {
        if is_table_array(v) {
            if let Value::Array(items) = v {
                for item in items {
                    if let Value::Table(sub) = item {
                        path.push(key.clone());
                        out.push_str(&format!("\n[[{}]]\n", path_str(path)));
                        write_table(out, sub, path);
                        path.pop();
                    }
                }
            }
        }
    }
}

fn key_str(key: &str) -> String {
    let bare = !key.is_empty()
        && key
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-');
    if bare {
        key.to_string()
    } else {
        format!("\"{}\"", escape(key))
    }
}

fn path_str(path: &[String]) -> String {
    path.iter()
        .map(|k| key_str(k))
        .collect::<Vec<_>>()
        .join(".")
}

fn scalar(v: &Value) -> String {
    match v {
        Value::Bool(b) => b.to_string(),
        Value::Int(i) => i.to_string(),
        Value::Float(x) => float_str(*x),
        Value::Str(s) => format!("\"{}\"", escape(s)),
        Value::Array(items) => {
            let inner: Vec<String> = items.iter().map(scalar).collect();
            format!("[{}]", inner.join(", "))
        }
        Value::Table(map) => {
            // Inline table (only reachable for tables nested inside arrays
            // of scalars, which the spec encoders do not produce — kept for
            // completeness).
            let inner: Vec<String> = map
                .iter()
                .map(|(k, v)| format!("{} = {}", key_str(k), scalar(v)))
                .collect();
            format!("{{{}}}", inner.join(", "))
        }
    }
}

/// Shortest round-trip decimal for `x`; integral floats keep a `.0` so
/// they re-parse as floats.
pub fn float_str(x: f64) -> String {
    if x.is_finite() && x == x.trunc() && x.abs() < 1e15 {
        format!("{x:.1}")
    } else {
        format!("{x}")
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_tables_and_arrays() {
        let doc = r#"
# a scenario
name = "probe"
count = 1_000
ratio = 0.25
flag = true

[region]
kind = "square"
side = 2.0

[[events]]
round = 10
ids = [1, 2, 3]

[[events]]
round = 20
center = [0.5, 0.5]
"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("probe"));
        assert_eq!(v.get("count").unwrap().as_i64(), Some(1000));
        assert_eq!(v.get("ratio").unwrap().as_f64(), Some(0.25));
        assert_eq!(v.get("flag").unwrap().as_bool(), Some(true));
        assert_eq!(
            v.get("region").unwrap().get("side").unwrap().as_f64(),
            Some(2.0)
        );
        let events = v.get("events").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("round").unwrap().as_i64(), Some(10));
        assert_eq!(events[1].get("round").unwrap().as_i64(), Some(20));
    }

    #[test]
    fn multiline_arrays_and_inline_tables() {
        let doc =
            "pts = [\n  [0.0, 0.0],\n  [1.0, 0.5], # comment\n]\nmeta = { a = 1, b = \"x\" }\n";
        let v = parse(doc).unwrap();
        assert_eq!(v.get("pts").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(v.get("meta").unwrap().get("a").unwrap().as_i64(), Some(1));
    }

    #[test]
    fn nested_table_headers() {
        let doc = "[a.b]\nx = 1\n[a.c]\ny = 2\n";
        let v = parse(doc).unwrap();
        assert_eq!(
            v.get("a")
                .unwrap()
                .get("b")
                .unwrap()
                .get("x")
                .unwrap()
                .as_i64(),
            Some(1)
        );
        assert_eq!(
            v.get("a")
                .unwrap()
                .get("c")
                .unwrap()
                .get("y")
                .unwrap()
                .as_i64(),
            Some(2)
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse("ok = 1\nbad =\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(parse("dup = 1\ndup = 2\n").is_err());
    }

    #[test]
    fn serializer_round_trips() {
        let doc = r#"
name = "rt"
ratio = 0.5
n = 7
tags = ["a", "b"]

[sub]
flag = false
pt = [1.0, 2.5]

[[items]]
id = 1

[[items]]
id = 2
"#;
        let v = parse(doc).unwrap();
        let text = to_string(&v);
        let reparsed = parse(&text).unwrap();
        assert_eq!(v, reparsed, "serialized:\n{text}");
    }

    #[test]
    fn integral_floats_stay_floats() {
        assert_eq!(float_str(2.0), "2.0");
        assert_eq!(float_str(0.5), "0.5");
        let v = parse("x = 2.0\n").unwrap();
        assert_eq!(v.get("x"), Some(&Value::Float(2.0)));
        let rt = parse(&to_string(&v)).unwrap();
        assert_eq!(v, rt);
    }
}
