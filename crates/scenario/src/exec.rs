//! The campaign executor's parallel substrate.
//!
//! Re-exported from [`laacad_exec`], the workspace-wide parallel map
//! (the synchronous round engine and experiment sweeps route through
//! the same crate). Kept as a module so existing
//! `laacad_scenario::exec::parallel_map` callers keep working.

pub use laacad_exec::{parallel_map, parallel_map_visit, parallel_map_with};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..200).collect(), |x: i32| x * 2);
        assert_eq!(out, (0..200).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_worker_count_matches() {
        let out = parallel_map_with(2, vec![1u32, 2, 3], |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }
}
