//! The campaign executor's parallel substrate.
//!
//! One work-stealing-free, dependency-free parallel map built on
//! `std::thread::scope`: workers claim input indices through an atomic
//! counter, so results land in input order regardless of scheduling.
//! This is the single parallel-execution path of the whole workspace —
//! `laacad-experiments` sweeps and scenario campaigns both route here.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Maps `f` over `inputs` in parallel, preserving input order.
///
/// Spawns up to `available_parallelism()` scoped threads (never more
/// than there are inputs); with one input or one core it degrades to a
/// plain sequential map. A panic in `f` propagates to the caller.
///
/// # Example
///
/// ```
/// let squares = laacad_scenario::exec::parallel_map(vec![1, 2, 3], |x| x * x);
/// assert_eq!(squares, vec![1, 4, 9]);
/// ```
pub fn parallel_map<T, R, F>(inputs: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = inputs.len();
    let workers = std::thread::available_parallelism()
        .map(|w| w.get())
        .unwrap_or(4)
        .min(n);
    if workers <= 1 {
        return inputs.into_iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let inputs: Vec<Mutex<Option<T>>> = inputs.into_iter().map(|t| Mutex::new(Some(t))).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = inputs[i]
                    .lock()
                    .expect("input mutex")
                    .take()
                    .expect("each index is claimed once");
                let result = f(item);
                *slots[i].lock().expect("slot mutex") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot mutex")
                .expect("every input produces a result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..200).collect(), |x: i32| x * 2);
        assert_eq!(out, (0..200).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_singleton() {
        let empty: Vec<i32> = parallel_map(Vec::new(), |x| x);
        assert!(empty.is_empty());
        assert_eq!(parallel_map(vec![7], |x: u32| x + 1), vec![8]);
    }

    #[test]
    fn non_copy_payloads() {
        let out = parallel_map(
            vec!["a".to_string(), "bb".to_string(), "ccc".to_string()],
            |s| s.len(),
        );
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        let _ = parallel_map(vec![1, 2, 3], |x: i32| {
            if x == 2 {
                panic!("boom");
            }
            x
        });
    }
}
