//! The campaign result store: JSONL (full records) + CSV (summaries).
//!
//! Serialization is deterministic — sorted keys, expansion-ordered rows,
//! shortest-round-trip floats, no timestamps — so running the same
//! campaign twice produces *byte-identical* files. The determinism
//! integration test pins this property.

use crate::campaign::CellResult;
use crate::json;
use crate::value::Value;
use std::path::{Path, PathBuf};

/// The CSV header row (including the trailing newline).
pub const CSV_HEADER: &str = "index,scenario,seed,n,k,alpha,gamma,loss,delay,corruption,\
     final_n,rounds,converged,\
     max_sensing_radius,min_sensing_radius,covered_fraction,min_degree,\
     balance_ratio,total_distance_moved,events_applied,\
     time_to_recover,coverage_dip,quarantined,error\n";

/// One cell's JSONL line (including the trailing newline): the cell
/// parameters plus either the full outcome or the error that prevented
/// it. [`to_jsonl`] is exactly these lines concatenated, which is what
/// lets the streaming store flush rows as cells complete and still
/// produce byte-identical files.
pub fn jsonl_line(r: &CellResult) -> String {
    let mut line = Value::table();
    line.insert("index", Value::Int(r.cell.index as i64));
    line.insert("scenario", Value::Str(r.cell.scenario.clone()));
    line.insert("seed", Value::Int(r.cell.seed as i64));
    line.insert("n", Value::Int(r.cell.n as i64));
    line.insert("k", Value::Int(r.cell.k as i64));
    line.insert("alpha", Value::Float(r.cell.alpha));
    if let Some(g) = r.cell.gamma {
        line.insert("gamma", Value::Float(g));
    }
    if let Some(l) = r.cell.loss {
        line.insert("loss", Value::Float(l));
    }
    if let Some(d) = r.cell.delay {
        line.insert("delay", Value::Float(d));
    }
    if let Some(c) = r.cell.corruption {
        line.insert("corruption", Value::Float(c));
    }
    match &r.outcome {
        Ok(outcome) => line.insert("outcome", outcome.to_value()),
        Err(e) => line.insert("error", Value::Str(e.to_string())),
    }
    let mut out = json::to_string(&line);
    out.push('\n');
    out
}

/// One JSONL line per cell — [`jsonl_line`] over every result.
pub fn to_jsonl(results: &[CellResult]) -> String {
    results.iter().map(jsonl_line).collect()
}

/// One cell's summary-CSV row (including the trailing newline).
pub fn csv_row(r: &CellResult) -> String {
    let c = &r.cell;
    // Scenario names come straight from user specs; keep the CSV
    // grid intact whatever they contain.
    let name = c.scenario.replace([',', '\n'], ";");
    match &r.outcome {
        Ok(o) => {
            // Recovery columns summarize ONE event — the first with
            // any recovery data — so the pair always describes the
            // same event (full per-event detail is in the JSONL).
            let rec = o
                .recovery
                .iter()
                .find(|rec| rec.coverage_dip.is_some() || rec.time_to_recover.is_some());
            let ttr = rec
                .and_then(|rec| rec.time_to_recover)
                .map(|t| t.to_string())
                .unwrap_or_default();
            let dip = rec
                .and_then(|rec| rec.coverage_dip)
                .map(|d| d.to_string())
                .unwrap_or_default();
            let quarantined = o
                .faults
                .as_ref()
                .map(|f| f.quarantined.to_string())
                .unwrap_or_default();
            format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},\n",
                c.index,
                name,
                c.seed,
                c.n,
                c.k,
                c.alpha,
                o.gamma,
                c.loss.map(|x| x.to_string()).unwrap_or_default(),
                c.delay.map(|x| x.to_string()).unwrap_or_default(),
                c.corruption.map(|x| x.to_string()).unwrap_or_default(),
                o.final_n,
                o.summary.rounds,
                o.summary.converged,
                o.summary.max_sensing_radius,
                o.summary.min_sensing_radius,
                o.coverage.covered_fraction,
                o.coverage.min_degree,
                o.balance_ratio,
                o.summary.total_distance_moved,
                o.events.len(),
                ttr,
                dip,
                quarantined,
            )
        }
        Err(e) => {
            let msg = e.to_string().replace([',', '\n'], ";");
            format!(
                "{},{},{},{},{},{},,,,,,,,,,,,,,,,,,{}\n",
                c.index, name, c.seed, c.n, c.k, c.alpha, msg
            )
        }
    }
}

/// Summary CSV: the header plus [`csv_row`] for every cell.
pub fn to_csv(results: &[CellResult]) -> String {
    let mut out = String::from(CSV_HEADER);
    for r in results {
        out.push_str(&csv_row(r));
    }
    out
}

/// Writes campaign results into a directory as `<name>.jsonl` and
/// `<name>.csv`.
#[derive(Debug, Clone)]
pub struct ResultStore {
    dir: PathBuf,
}

impl ResultStore {
    /// A store rooted at `dir` (created on demand).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        ResultStore { dir: dir.into() }
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Writes both result files, returning `(jsonl_path, csv_path)`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write(&self, name: &str, results: &[CellResult]) -> std::io::Result<(PathBuf, PathBuf)> {
        std::fs::create_dir_all(&self.dir)?;
        let jsonl = self.dir.join(format!("{name}.jsonl"));
        std::fs::write(&jsonl, to_jsonl(results))?;
        let csv = self.dir.join(format!("{name}.csv"));
        std::fs::write(&csv, to_csv(results))?;
        Ok((jsonl, csv))
    }

    /// Opens both result files for **streaming**: rows are appended (and
    /// flushed) one cell at a time as the campaign completes them, so a
    /// long grid's results reach disk while later cells are still
    /// running — and a killed campaign leaves every finished row behind.
    /// The finished files are byte-identical to [`ResultStore::write`]
    /// on the same results.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn open_stream(&self, name: &str) -> std::io::Result<StreamingResultFiles> {
        std::fs::create_dir_all(&self.dir)?;
        let jsonl_path = self.dir.join(format!("{name}.jsonl"));
        let csv_path = self.dir.join(format!("{name}.csv"));
        let jsonl = std::fs::File::create(&jsonl_path)?;
        let mut csv = std::fs::File::create(&csv_path)?;
        std::io::Write::write_all(&mut csv, CSV_HEADER.as_bytes())?;
        std::io::Write::flush(&mut csv)?;
        Ok(StreamingResultFiles {
            jsonl,
            csv,
            jsonl_path,
            csv_path,
        })
    }
}

/// An open JSONL + CSV pair that [`ResultStore::open_stream`] hands out;
/// one [`StreamingResultFiles::append`] per completed cell, flushed so
/// the rows are durable immediately.
#[derive(Debug)]
pub struct StreamingResultFiles {
    jsonl: std::fs::File,
    csv: std::fs::File,
    jsonl_path: PathBuf,
    csv_path: PathBuf,
}

impl StreamingResultFiles {
    /// Appends (and flushes) one cell's JSONL line and CSV row.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn append(&mut self, result: &CellResult) -> std::io::Result<()> {
        use std::io::Write;
        self.jsonl.write_all(jsonl_line(result).as_bytes())?;
        self.jsonl.flush()?;
        self.csv.write_all(csv_row(result).as_bytes())?;
        self.csv.flush()
    }

    /// Closes the stream, returning `(jsonl_path, csv_path)`.
    pub fn into_paths(self) -> (PathBuf, PathBuf) {
        (self.jsonl_path, self.csv_path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_campaign, CampaignSpec};
    use crate::spec::ScenarioSpec;

    fn tiny_results() -> Vec<CellResult> {
        let mut spec = ScenarioSpec::uniform("store", 8, 1);
        spec.laacad.max_rounds = 25;
        run_campaign(&CampaignSpec::over_seeds(spec, [1, 2])).unwrap()
    }

    #[test]
    fn jsonl_lines_parse_back() {
        let results = tiny_results();
        let text = to_jsonl(&results);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for (i, line) in lines.iter().enumerate() {
            let v = crate::json::parse(line).unwrap();
            assert_eq!(v.get("index").unwrap().as_i64(), Some(i as i64));
            assert!(v.get("outcome").is_some());
        }
    }

    #[test]
    fn csv_has_header_plus_rows() {
        let results = tiny_results();
        let text = to_csv(&results);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("index,scenario,seed"));
        assert!(lines[1].starts_with("0,store,1,"));
    }

    #[test]
    fn store_writes_files() {
        let dir = std::env::temp_dir().join("laacad-scenario-store-test");
        let _ = std::fs::remove_dir_all(&dir);
        let store = ResultStore::new(&dir);
        let results = tiny_results();
        let (jsonl, csv) = store.write("probe", &results).unwrap();
        assert!(jsonl.exists() && csv.exists());
        assert_eq!(std::fs::read_to_string(&jsonl).unwrap(), to_jsonl(&results));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
