//! Executing one scenario: spec + seed → simulation → outcome.

use crate::events::{AppliedEvent, TimelineHook};
use crate::spec::{ScenarioSpec, SpecError};
use crate::value::{encode, Value};
use laacad::{HookAction, ObservedRound, Observer, Recorder, RoundDelta, RunSummary, Session};
use laacad_coverage::{evaluate_coverage, CoverageReport};
use laacad_dist::{AsyncExecutor, ProtocolStats, Termination};
use laacad_wsn::energy::EnergyModel;

/// Compact per-round metric row streamed into result files.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundMetric {
    /// Round index (1-based).
    pub round: usize,
    /// Maximum circumradius this round.
    pub max_circumradius: f64,
    /// Minimum circumradius this round.
    pub min_circumradius: f64,
    /// Nodes that moved.
    pub nodes_moved: usize,
    /// k-covered fraction at the end of the round (present only when
    /// `evaluation.round_coverage_samples` is non-zero).
    pub covered_fraction: Option<f64>,
}

/// Recovery summary for one applied dynamic event, derived from the
/// stored round series: how deep coverage dipped after the event and how
/// many rounds the survivors needed to climb back over the target.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoverySummary {
    /// Round the event fired after.
    pub event_round: usize,
    /// Short event description (mirrors the event log).
    pub action: String,
    /// Covered fraction at the event round, before the event mutated the
    /// network (`None` for round-0 events — nothing was probed yet).
    pub coverage_before: Option<f64>,
    /// `coverage_before − min(covered fraction)` over the rounds from
    /// the event until recovery (or the end of the run), clamped at 0.
    pub coverage_dip: Option<f64>,
    /// Rounds from the event to the first round at or above the
    /// recovery target (`None` when the run never got back there).
    pub time_to_recover: Option<usize>,
}

/// Derives per-event [`RecoverySummary`]s from a stored round series.
///
/// Only rounds carrying a `covered_fraction` contribute (i.e. the
/// scenario must set `evaluation.round_coverage_samples`); skipped
/// events are ignored.
pub fn recovery_metrics(
    rounds: &[RoundMetric],
    events: &[AppliedEvent],
    target: f64,
) -> Vec<RecoverySummary> {
    events
        .iter()
        .filter(|e| e.skipped.is_none())
        .map(|e| {
            let coverage_before = rounds
                .iter()
                .rev()
                .find(|r| r.round <= e.round)
                .and_then(|r| r.covered_fraction);
            let mut min_after: Option<f64> = None;
            let mut recovered_round: Option<usize> = None;
            for r in rounds.iter().filter(|r| r.round > e.round) {
                let Some(c) = r.covered_fraction else {
                    continue;
                };
                min_after = Some(min_after.map_or(c, |m: f64| m.min(c)));
                if c >= target {
                    recovered_round = Some(r.round);
                    break; // dip is measured up to recovery
                }
            }
            RecoverySummary {
                event_round: e.round,
                action: e.action.clone(),
                coverage_before,
                coverage_dip: match (coverage_before, min_after) {
                    (Some(b), Some(m)) => Some((b - m).max(0.0)),
                    _ => None,
                },
                time_to_recover: recovered_round.map(|r| r - e.round),
            }
        })
        .collect()
}

/// An [`Observer`] sampling k-coverage after every round. Its series is
/// part of a run's resumable state, so the checkpoint module
/// ([`crate::checkpoint`]) serializes and restores it.
pub(crate) struct CoverageProbe {
    pub(crate) samples: usize,
    pub(crate) series: Vec<(usize, f64)>,
}

impl Observer for CoverageProbe {
    fn on_round_end(&mut self, sim: &mut Session, delta: &RoundDelta) -> HookAction {
        let cov = evaluate_coverage(sim.network(), sim.region(), sim.config().k, self.samples);
        self.series.push((delta.report.round, cov.covered_fraction));
        HookAction::Default
    }
}

/// Convergence-under-faults metrics for a scenario that ran on the
/// asynchronous executor (i.e. carried a `[faults]` section), compared
/// against a fault-free synchronous run of the same cell.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultOutcome {
    /// How the asynchronous run terminated
    /// ([`Termination::as_str`]).
    pub termination: String,
    /// Rounds the faulted run needed (the round limit when it never
    /// quiesced).
    pub rounds: usize,
    /// Rounds the fault-free synchronous baseline needed.
    pub baseline_rounds: usize,
    /// Virtual ticks the faulted run consumed.
    pub ticks: u64,
    /// Algorithm (ring-search) messages of the faulted run over the
    /// baseline's — >1 means faults cost extra search traffic.
    pub message_overhead: f64,
    /// k-covered fraction of the fault-free baseline deployment.
    pub baseline_coverage: f64,
    /// `baseline_coverage − covered_fraction` of the faulted run,
    /// clamped at 0 — how much coverage the faults cost.
    pub coverage_dip: f64,
    /// Validation rejections: senders quarantined for implausible
    /// hello payloads (mirror of `protocol.quarantined`, surfaced for
    /// the CSV/JSONL grids).
    pub quarantined: u64,
    /// Corrupted payloads absorbed as beliefs with validation off —
    /// non-zero means the deployment may have diverged from ground
    /// truth (also raised as an outcome warning).
    pub corrupted_accepted: u64,
    /// Minimum k-covered fraction probed while a partition was open
    /// (`None` when no partition was probed).
    pub partition_coverage_floor: Option<f64>,
    /// Ticks from the last partition heal to the last applied movement
    /// — how long the deployment kept re-equilibrating after the heal
    /// (`None` when no partition healed).
    pub heal_recovery_ticks: Option<u64>,
    /// Coordination-plane message accounting.
    pub protocol: ProtocolStats,
}

/// Everything a finished scenario run reports.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// Scenario name.
    pub scenario: String,
    /// The seed this run used.
    pub seed: u64,
    /// Final population (after failures/insertions).
    pub final_n: usize,
    /// The run summary (rounds, convergence, R*, messages, movement).
    pub summary: RunSummary,
    /// Independent k-coverage verification at the final deployment.
    pub coverage: CoverageReport,
    /// Max per-node sensing load `max_i E(r_i)`.
    pub max_load: f64,
    /// Total sensing load `Σ_i E(r_i)`.
    pub total_load: f64,
    /// Load-balance ratio `min E / max E`.
    pub balance_ratio: f64,
    /// Events applied (or skipped) during the run.
    pub events: Vec<AppliedEvent>,
    /// Per-event recovery summaries (empty unless the scenario enables
    /// `evaluation.round_coverage_samples`).
    pub recovery: Vec<RecoverySummary>,
    /// Per-round series (Fig. 6-style).
    pub rounds: Vec<RoundMetric>,
    /// Final node positions (render-ready).
    pub final_positions: Vec<(f64, f64)>,
    /// Final per-node sensing radii (same order as positions).
    pub final_radii: Vec<f64>,
    /// The transmission range the run used.
    pub gamma: f64,
    /// Non-fatal anomalies: timeline events that never fired, fault
    /// budgets that ran out. Empty on a clean run.
    pub warnings: Vec<String>,
    /// Convergence-under-faults metrics (present only when the spec
    /// carries a `[faults]` section).
    pub faults: Option<FaultOutcome>,
}

impl ScenarioOutcome {
    /// Reconstructs the final deployment as a [`laacad_wsn::Network`]
    /// (positions + sensing radii; odometry is not carried over).
    pub fn final_network(&self) -> laacad_wsn::Network {
        let mut net = laacad_wsn::Network::from_positions(
            self.gamma,
            self.final_positions
                .iter()
                .map(|&(x, y)| laacad_geom::Point::new(x, y)),
        );
        for (i, &r) in self.final_radii.iter().enumerate() {
            net.set_sensing_radius(laacad_wsn::NodeId(i), r);
        }
        net
    }
}

impl ScenarioOutcome {
    /// Serializes the outcome as a deterministic JSON [`Value`]
    /// (sorted keys, shortest-round-trip floats) for the JSONL store.
    pub fn to_value(&self) -> Value {
        let mut t = Value::table();
        t.insert("scenario", Value::Str(self.scenario.clone()));
        t.insert("seed", Value::Int(self.seed as i64));
        t.insert("final_n", encode::int(self.final_n));
        t.insert("rounds", encode::int(self.summary.rounds));
        t.insert("converged", Value::Bool(self.summary.converged));
        t.insert(
            "max_sensing_radius",
            Value::Float(self.summary.max_sensing_radius),
        );
        t.insert(
            "min_sensing_radius",
            Value::Float(self.summary.min_sensing_radius),
        );
        t.insert(
            "total_distance_moved",
            Value::Float(self.summary.total_distance_moved),
        );
        t.insert(
            "messages_unicast",
            Value::Int(self.summary.messages.unicast as i64),
        );
        t.insert(
            "messages_broadcast",
            Value::Int(self.summary.messages.broadcast as i64),
        );
        let mut cov = Value::table();
        cov.insert("k", encode::int(self.coverage.k));
        cov.insert("samples", encode::int(self.coverage.samples));
        cov.insert(
            "covered_fraction",
            Value::Float(self.coverage.covered_fraction),
        );
        cov.insert("min_degree", encode::int(self.coverage.min_degree));
        cov.insert("mean_degree", Value::Float(self.coverage.mean_degree));
        cov.insert("holes", encode::int(self.coverage.holes.len()));
        t.insert("coverage", cov);
        t.insert("max_load", Value::Float(self.max_load));
        t.insert("total_load", Value::Float(self.total_load));
        t.insert("balance_ratio", Value::Float(self.balance_ratio));
        t.insert(
            "events",
            Value::Array(
                self.events
                    .iter()
                    .map(|e| {
                        let mut ev = Value::table();
                        ev.insert("round", encode::int(e.round));
                        ev.insert("action", Value::Str(e.action.clone()));
                        ev.insert("removed", encode::int(e.removed));
                        ev.insert("inserted", encode::int(e.inserted));
                        if let Some(reason) = &e.skipped {
                            ev.insert("skipped", Value::Str(reason.clone()));
                        }
                        ev
                    })
                    .collect(),
            ),
        );
        t.insert(
            "final_positions",
            Value::Array(
                self.final_positions
                    .iter()
                    .map(|&p| encode::pair(p))
                    .collect(),
            ),
        );
        t.insert(
            "final_radii",
            Value::Array(self.final_radii.iter().map(|&r| Value::Float(r)).collect()),
        );
        t.insert("gamma", Value::Float(self.gamma));
        if !self.warnings.is_empty() {
            t.insert(
                "warnings",
                Value::Array(
                    self.warnings
                        .iter()
                        .map(|w| Value::Str(w.clone()))
                        .collect(),
                ),
            );
        }
        if let Some(f) = &self.faults {
            let mut ft = Value::table();
            ft.insert("termination", Value::Str(f.termination.clone()));
            ft.insert("rounds", encode::int(f.rounds));
            ft.insert("baseline_rounds", encode::int(f.baseline_rounds));
            ft.insert("ticks", Value::Int(f.ticks as i64));
            ft.insert("message_overhead", Value::Float(f.message_overhead));
            ft.insert("baseline_coverage", Value::Float(f.baseline_coverage));
            ft.insert("coverage_dip", Value::Float(f.coverage_dip));
            ft.insert("quarantined", Value::Int(f.quarantined as i64));
            ft.insert(
                "corrupted_accepted",
                Value::Int(f.corrupted_accepted as i64),
            );
            if let Some(floor) = f.partition_coverage_floor {
                ft.insert("partition_coverage_floor", Value::Float(floor));
            }
            if let Some(heal) = f.heal_recovery_ticks {
                ft.insert("heal_recovery_ticks", Value::Int(heal as i64));
            }
            let mut p = Value::table();
            p.insert("hellos", Value::Int(f.protocol.hellos as i64));
            p.insert("acks", Value::Int(f.protocol.acks as i64));
            p.insert(
                "retransmissions",
                Value::Int(f.protocol.retransmissions as i64),
            );
            p.insert("sent", Value::Int(f.protocol.sent as i64));
            p.insert("delivered", Value::Int(f.protocol.delivered as i64));
            p.insert("lost", Value::Int(f.protocol.lost as i64));
            p.insert("duplicated", Value::Int(f.protocol.duplicated as i64));
            p.insert(
                "dropped_to_crashed",
                Value::Int(f.protocol.dropped_to_crashed as i64),
            );
            p.insert("timeouts", Value::Int(f.protocol.timeouts as i64));
            p.insert("computes", Value::Int(f.protocol.computes as i64));
            p.insert("crashes", Value::Int(f.protocol.crashes as i64));
            p.insert("recoveries", Value::Int(f.protocol.recoveries as i64));
            p.insert("corrupted", Value::Int(f.protocol.corrupted as i64));
            p.insert("quarantined", Value::Int(f.protocol.quarantined as i64));
            p.insert(
                "quarantine_drops",
                Value::Int(f.protocol.quarantine_drops as i64),
            );
            p.insert(
                "corrupted_accepted",
                Value::Int(f.protocol.corrupted_accepted as i64),
            );
            p.insert(
                "partition_dropped",
                Value::Int(f.protocol.partition_dropped as i64),
            );
            p.insert("rtt_samples", Value::Int(f.protocol.rtt_samples as i64));
            ft.insert("protocol", p);
            t.insert("faults", ft);
        }
        if !self.recovery.is_empty() {
            t.insert(
                "recovery",
                Value::Array(
                    self.recovery
                        .iter()
                        .map(|r| {
                            let mut row = Value::table();
                            row.insert("event_round", encode::int(r.event_round));
                            row.insert("action", Value::Str(r.action.clone()));
                            if let Some(b) = r.coverage_before {
                                row.insert("coverage_before", Value::Float(b));
                            }
                            if let Some(d) = r.coverage_dip {
                                row.insert("coverage_dip", Value::Float(d));
                            }
                            if let Some(tr) = r.time_to_recover {
                                row.insert("time_to_recover", encode::int(tr));
                            }
                            row
                        })
                        .collect(),
                ),
            );
        }
        t.insert(
            "round_series",
            Value::Array(
                self.rounds
                    .iter()
                    .map(|r| {
                        let mut row = Value::table();
                        row.insert("round", encode::int(r.round));
                        row.insert("max_circumradius", Value::Float(r.max_circumradius));
                        row.insert("min_circumradius", Value::Float(r.min_circumradius));
                        row.insert("nodes_moved", encode::int(r.nodes_moved));
                        if let Some(c) = r.covered_fraction {
                            row.insert("covered_fraction", Value::Float(c));
                        }
                        row
                    })
                    .collect(),
            ),
        );
        t
    }
}

/// Builds the session and timeline observer for `spec` at `seed`
/// without running it (the bench fixtures use this to construct
/// workloads).
pub fn build_scenario(
    spec: &ScenarioSpec,
    seed: u64,
) -> Result<(Session, TimelineHook), SpecError> {
    let region = spec.region.build()?;
    let initial = spec.placement.build(&region, seed)?;
    let config = spec.laacad.build(&region, initial.len(), seed)?;
    let sim = Session::builder(config)
        .region(region)
        .positions(initial)
        .build()
        .map_err(|e| SpecError::Build(e.to_string()))?;
    Ok((sim, TimelineHook::new(&spec.events, seed)))
}

/// Runs `spec` at `seed` to completion and evaluates the outcome.
pub fn run_scenario(spec: &ScenarioSpec, seed: u64) -> Result<ScenarioOutcome, SpecError> {
    run_scenario_impl(spec, seed, None).map(|(outcome, _)| outcome)
}

/// [`run_scenario`] with a telemetry [`Recorder`] installed on the
/// session for the whole run; returns the outcome together with the
/// recorder (carrying whatever it accumulated). Telemetry is purely
/// observational — the outcome is bit-identical to [`run_scenario`] on
/// the same spec and seed.
///
/// # Errors
///
/// Exactly as [`run_scenario`]; the recorder is dropped with the
/// session when the scenario cannot be built.
pub fn run_scenario_recorded(
    spec: &ScenarioSpec,
    seed: u64,
    recorder: Box<dyn Recorder>,
) -> Result<(ScenarioOutcome, Box<dyn Recorder>), SpecError> {
    let (outcome, recorder) = run_scenario_impl(spec, seed, Some(recorder))?;
    Ok((
        outcome,
        recorder.expect("session hands back the installed recorder"),
    ))
}

/// Drives the synchronous engine loop round by round — identical
/// semantics to [`Session::run_with_observers`] with the probe/hook
/// observer pair — invoking `after_round` after each observed round.
/// The checkpoint runners hook their serialization in there; the plain
/// runner passes a no-op.
pub(crate) fn drive_rounds(
    sim: &mut Session,
    probe: &mut CoverageProbe,
    hook: &mut TimelineHook,
    mut after_round: impl FnMut(
        &Session,
        &CoverageProbe,
        &TimelineHook,
        &ObservedRound,
    ) -> Result<(), SpecError>,
) -> Result<RunSummary, SpecError> {
    while sim.rounds_executed() < sim.config().max_rounds {
        // Probe first: the event-round sample must see the pre-event
        // network (the timeline observer mutates it afterwards).
        let verdict = if probe.samples > 0 {
            sim.step_observed(&mut [probe, hook])
        } else {
            sim.step_observed(&mut [hook])
        };
        after_round(sim, probe, hook, &verdict)?;
        if verdict.stop {
            break;
        }
        if sim.is_converged() && !verdict.keep_running {
            break;
        }
    }
    sim.finalize();
    Ok(sim.summarize())
}

/// Evaluates a finished synchronous run into its [`ScenarioOutcome`] —
/// shared by the plain, recorded and checkpoint-resumed runners so all
/// three produce bit-identical outcomes from the same end state.
pub(crate) fn assemble_sync_outcome(
    mut sim: Session,
    mut hook: TimelineHook,
    probe: CoverageProbe,
    spec: &ScenarioSpec,
    seed: u64,
    summary: RunSummary,
) -> (ScenarioOutcome, Option<Box<dyn Recorder>>) {
    // Timeline entries beyond the executed rounds must still show up in
    // the outcome (as skipped), or the results would silently describe a
    // different scenario than the one specified.
    let mut warnings = hook.mark_unfired(summary.rounds);
    if !summary.converged {
        warnings.push(format!(
            "run stopped at round {} without converging: the max_rounds \
             budget ({}) was exhausted before ε-termination",
            summary.rounds, spec.laacad.max_rounds
        ));
    }
    let region = sim.region().clone();
    let k = sim.config().k;
    let coverage = evaluate_coverage(sim.network(), &region, k, spec.evaluation.coverage_samples);
    let model = EnergyModel::new(std::f64::consts::PI, spec.evaluation.energy_exponent);
    let mut probed = probe.series.iter().copied().peekable();
    let rounds: Vec<RoundMetric> = sim
        .history()
        .rounds()
        .iter()
        .map(|r| RoundMetric {
            round: r.round,
            max_circumradius: r.max_circumradius,
            min_circumradius: r.min_circumradius,
            nodes_moved: r.nodes_moved,
            covered_fraction: match probed.peek() {
                Some(&(round, c)) if round == r.round => {
                    probed.next();
                    Some(c)
                }
                _ => None,
            },
        })
        .collect();
    // Without per-round probes every summary field would be None — keep
    // the documented "empty unless probing is enabled" contract instead
    // of emitting data-free rows.
    let recovery = if spec.evaluation.round_coverage_samples > 0 {
        recovery_metrics(&rounds, hook.log(), spec.evaluation.recovery_target)
    } else {
        Vec::new()
    };
    let recorder = sim.take_recorder();
    let outcome = ScenarioOutcome {
        scenario: spec.name.clone(),
        seed,
        final_n: sim.network().len(),
        max_load: model.max_load(sim.network()),
        total_load: model.total_load(sim.network()),
        balance_ratio: model.balance_ratio(sim.network()),
        final_positions: sim
            .network()
            .positions()
            .iter()
            .map(|p| (p.x, p.y))
            .collect(),
        final_radii: sim.network().sensing_radii().to_vec(),
        gamma: sim.config().gamma,
        summary,
        coverage,
        events: hook.into_log(),
        recovery,
        rounds,
        warnings,
        faults: None,
    };
    (outcome, recorder)
}

fn run_scenario_impl(
    spec: &ScenarioSpec,
    seed: u64,
    recorder: Option<Box<dyn Recorder>>,
) -> Result<(ScenarioOutcome, Option<Box<dyn Recorder>>), SpecError> {
    if spec.laacad.faults.is_some() {
        return run_async_impl(spec, seed, recorder);
    }
    let (mut sim, mut hook) = build_scenario(spec, seed)?;
    if let Some(r) = recorder {
        sim.set_recorder(r);
    }
    // Round-0 events act on the initial deployment, before any movement.
    hook.fire_due(&mut sim, 0);
    let mut probe = CoverageProbe {
        samples: spec.evaluation.round_coverage_samples,
        series: Vec::new(),
    };
    let summary = drive_rounds(&mut sim, &mut probe, &mut hook, |_, _, _, _| Ok(()))?;
    Ok(assemble_sync_outcome(sim, hook, probe, spec, seed, summary))
}

/// Runs a `[faults]`-bearing scenario on the asynchronous executor and
/// pairs it with a fault-free synchronous baseline of the same cell.
fn run_async_impl(
    spec: &ScenarioSpec,
    seed: u64,
    recorder: Option<Box<dyn Recorder>>,
) -> Result<(ScenarioOutcome, Option<Box<dyn Recorder>>), SpecError> {
    let fault_spec = spec
        .laacad
        .faults
        .as_ref()
        .expect("run_async_impl is only entered when [faults] is present");
    if !spec.events.is_empty() {
        return Err(SpecError::Build(
            "scenarios with a [faults] section run on the asynchronous executor, \
             which does not support timeline [[events]]; drop one or the other"
                .into(),
        ));
    }
    let region = spec.region.build()?;
    let initial = spec.placement.build(&region, seed)?;
    let config = spec.laacad.build(&region, initial.len(), seed)?;
    let gamma = config.gamma;
    let k = config.k;

    // Fault-free synchronous baseline: same region, placement and
    // config, so every gap between it and the faulted run is caused by
    // the fault plan alone.
    let mut baseline = Session::builder(config.clone())
        .region(region.clone())
        .positions(initial.clone())
        .build()
        .map_err(|e| SpecError::Build(e.to_string()))?;
    let baseline_summary = baseline.run();
    let baseline_coverage = evaluate_coverage(
        baseline.network(),
        &region,
        k,
        spec.evaluation.coverage_samples,
    );

    let (plan, proto) = fault_spec.to_plan();
    let mut exec = AsyncExecutor::new(config, region.clone(), initial, plan, proto)
        .map_err(|e| SpecError::Build(e.to_string()))?;
    if let Some(r) = recorder {
        exec.set_recorder(r);
    }
    // Coverage probes over the partition windows: the executor calls
    // back with the ground-truth network at the scheduled ticks, and the
    // sampled series becomes the partition coverage floor + post-heal
    // recovery evidence in the outcome. Probes observe only — the run is
    // bit-identical with or without them.
    let probe_series = std::sync::Arc::new(std::sync::Mutex::new(Vec::<(u64, f64)>::new()));
    if !fault_spec.partition.is_empty() && fault_spec.probe_every > 0 {
        let sink = probe_series.clone();
        let probe_region = region.clone();
        let samples = spec.evaluation.coverage_samples;
        exec.set_probe(
            fault_spec.probe_every,
            Box::new(move |tick, net| {
                let cov = evaluate_coverage(net, &probe_region, k, samples);
                sink.lock().unwrap().push((tick, cov.covered_fraction));
            }),
        );
    }
    let report = exec.run();
    let recorder = exec.take_recorder();
    // The executor still holds the probe closure (and its Arc clone), so
    // snapshot the series rather than unwrapping it.
    let probe_series: Vec<(u64, f64)> = probe_series.lock().unwrap().clone();

    let coverage = evaluate_coverage(exec.network(), &region, k, spec.evaluation.coverage_samples);
    let model = EnergyModel::new(std::f64::consts::PI, spec.evaluation.energy_exponent);
    let rounds: Vec<RoundMetric> = report
        .rounds
        .iter()
        .map(|r| RoundMetric {
            round: r.round,
            max_circumradius: r.max_circumradius,
            min_circumradius: r.min_circumradius,
            nodes_moved: r.nodes_moved,
            covered_fraction: None,
        })
        .collect();
    let mut warnings = Vec::new();
    if report.termination != Termination::Converged {
        // Name the budget that tripped (and its configured value), not
        // just the termination tag: "round_limit" alone does not tell a
        // reader what to raise.
        let budget = match report.termination {
            Termination::RoundLimit => {
                format!("the max_rounds budget ({}) ran out", spec.laacad.max_rounds)
            }
            Termination::TickBudget => {
                format!("the max_ticks budget ({}) ran out", fault_spec.max_ticks)
            }
            Termination::EventBudget => "the processed-event budget ran out".to_string(),
            Termination::Deadlock => {
                "the event queue deadlocked (no live node can make progress)".to_string()
            }
            Termination::Converged => unreachable!("guarded above"),
        };
        warnings.push(format!(
            "async run terminated by {} at round {} after {} ticks without \
             quiescing: {budget}; the reported deployment is partial",
            report.termination.as_str(),
            report.summary.rounds,
            report.ticks
        ));
    }
    if report.protocol.corrupted_accepted > 0 {
        warnings.push(format!(
            "{} corrupted payloads were accepted as beliefs (corruption_validate \
             = false): the reported deployment may have diverged from the \
             ground-truth fixed point",
            report.protocol.corrupted_accepted
        ));
    }
    // Partition coverage floor: the minimum probed coverage while any
    // partition was open (probes after the heal belong to the recovery
    // tail, not the floor).
    let partition_open_at = |tick: u64| {
        fault_spec
            .partition
            .iter()
            .any(|p| tick >= p.at && p.heal_at.is_none_or(|h| tick < h))
    };
    let partition_coverage_floor = probe_series
        .iter()
        .filter(|&&(tick, _)| partition_open_at(tick))
        .map(|&(_, c)| c)
        .fold(None, |acc: Option<f64>, c| {
            Some(acc.map_or(c, |m| m.min(c)))
        });
    let heal_recovery_ticks = report
        .last_heal_tick
        .map(|heal| report.last_move_tick.saturating_sub(heal));
    let baseline_messages =
        (baseline_summary.messages.unicast + baseline_summary.messages.broadcast) as f64;
    let async_messages =
        (report.summary.messages.unicast + report.summary.messages.broadcast) as f64;
    let faults = FaultOutcome {
        termination: report.termination.as_str().to_string(),
        rounds: report.summary.rounds,
        baseline_rounds: baseline_summary.rounds,
        ticks: report.ticks,
        message_overhead: if baseline_messages > 0.0 {
            async_messages / baseline_messages
        } else {
            1.0
        },
        baseline_coverage: baseline_coverage.covered_fraction,
        coverage_dip: (baseline_coverage.covered_fraction - coverage.covered_fraction).max(0.0),
        quarantined: report.protocol.quarantined,
        corrupted_accepted: report.protocol.corrupted_accepted,
        partition_coverage_floor,
        heal_recovery_ticks,
        protocol: report.protocol,
    };
    let outcome = ScenarioOutcome {
        scenario: spec.name.clone(),
        seed,
        final_n: exec.network().len(),
        max_load: model.max_load(exec.network()),
        total_load: model.total_load(exec.network()),
        balance_ratio: model.balance_ratio(exec.network()),
        final_positions: exec
            .network()
            .positions()
            .iter()
            .map(|p| (p.x, p.y))
            .collect(),
        final_radii: exec.network().sensing_radii().to_vec(),
        gamma,
        summary: report.summary,
        coverage,
        events: Vec::new(),
        recovery: Vec::new(),
        rounds,
        warnings,
        faults: Some(faults),
    };
    Ok((outcome, recorder))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{EventAction, EventSpec};

    #[test]
    fn plain_scenario_runs_and_covers() {
        let mut spec = ScenarioSpec::uniform("smoke", 16, 1);
        spec.laacad.max_rounds = 100;
        let out = run_scenario(&spec, 42).unwrap();
        assert_eq!(out.scenario, "smoke");
        assert_eq!(out.final_n, 16);
        assert!(out.coverage.covered_fraction > 0.99, "{}", out.coverage);
        assert!(!out.rounds.is_empty());
        assert!(out.max_load >= out.total_load / 16.0);
    }

    #[test]
    fn identical_seeds_identical_outcomes() {
        let mut spec = ScenarioSpec::uniform("det", 14, 1);
        spec.laacad.max_rounds = 60;
        spec.events.push(EventSpec {
            round: 10,
            action: EventAction::FailFraction { fraction: 0.15 },
        });
        let a = run_scenario(&spec, 7).unwrap();
        let b = run_scenario(&spec, 7).unwrap();
        assert_eq!(a, b);
        let c = run_scenario(&spec, 8).unwrap();
        assert_ne!(a.summary.max_sensing_radius, c.summary.max_sensing_radius);
    }

    #[test]
    fn round_zero_events_act_on_the_initial_deployment() {
        let mut spec = ScenarioSpec::uniform("doa", 20, 1);
        spec.laacad.max_rounds = 1; // no time to fire anything after round 1
        spec.events.push(EventSpec {
            round: 0,
            action: EventAction::FailFraction { fraction: 0.25 },
        });
        let out = run_scenario(&spec, 5).unwrap();
        assert_eq!(out.final_n, 15, "25% dead on arrival");
        assert_eq!(out.events.len(), 1);
        assert_eq!(out.events[0].round, 0);
        assert_eq!(out.events[0].removed, 5);
        assert!(out.events[0].skipped.is_none());
    }

    #[test]
    fn outcome_serializes_to_json() {
        let mut spec = ScenarioSpec::uniform("json", 10, 1);
        spec.laacad.max_rounds = 30;
        let out = run_scenario(&spec, 3).unwrap();
        let line = crate::json::to_string(&out.to_value());
        let back = crate::json::parse(&line).unwrap();
        assert_eq!(back.get("scenario").unwrap().as_str(), Some("json"));
        assert_eq!(back.get("final_n").unwrap().as_i64(), Some(10));
    }
}
