//! Compiling the declarative event timeline into a runtime observer.
//!
//! [`TimelineHook`] implements [`laacad::Observer`]: after every round
//! it fires all due [`EventSpec`]s by translating them into concrete
//! [`laacad::NetworkEvent`]s against the live session. Randomized
//! events (`fail_fraction`, `insert` placements) draw from a dedicated
//! SplitMix64 stream seeded from the run seed, so a scenario replays
//! identically for identical seeds regardless of thread scheduling.

use crate::spec::{EventAction, EventSpec};
use laacad::{HookAction, NetworkEvent, Observer, RoundDelta, Session};
use laacad_geom::Point;
use laacad_region::sampling::SplitMix64;
use laacad_wsn::energy::EnergyModel;
use laacad_wsn::NodeId;

/// Record of one event application (or skip) during a run.
#[derive(Debug, Clone, PartialEq)]
pub struct AppliedEvent {
    /// Round after which the event fired.
    pub round: usize,
    /// Short description of the action (e.g. `fail_fraction(0.2)`).
    pub action: String,
    /// Nodes removed.
    pub removed: usize,
    /// Nodes inserted.
    pub inserted: usize,
    /// Why the event was skipped, if it was (validation failure — e.g.
    /// killing every node — never aborts a campaign).
    pub skipped: Option<String>,
}

/// An [`Observer`] executing a scenario's event timeline.
#[derive(Debug)]
pub struct TimelineHook {
    /// Events sorted by round (stable, preserving spec order within a
    /// round).
    events: Vec<EventSpec>,
    next: usize,
    rng: SplitMix64,
    log: Vec<AppliedEvent>,
}

impl TimelineHook {
    /// Builds a hook from a spec's timeline and the run seed.
    pub fn new(events: &[EventSpec], seed: u64) -> Self {
        let mut sorted = events.to_vec();
        sorted.sort_by_key(|e| e.round);
        TimelineHook {
            events: sorted,
            next: 0,
            // Decorrelate from the placement stream (which uses the seed
            // directly).
            rng: SplitMix64::new(seed ^ 0xE7E2_7D5A_11AD_CA1D),
            log: Vec::new(),
        }
    }

    /// Events applied (and skipped) so far, in firing order.
    pub fn log(&self) -> &[AppliedEvent] {
        &self.log
    }

    /// The hook's resumable state — (next event index, RNG state, event
    /// log) — for checkpoint serialization. Feeding it back through
    /// [`TimelineHook::restore`] (with the same spec timeline) yields a
    /// hook whose subsequent firings are bit-identical to the original.
    pub fn checkpoint(&self) -> (usize, u64, &[AppliedEvent]) {
        (self.next, self.rng.state(), &self.log)
    }

    /// Rebuilds a hook mid-run from [`TimelineHook::checkpoint`] state.
    /// `events` must be the same spec timeline the original hook was
    /// built from; `rng_state` resumes the victim/placement stream
    /// exactly where the checkpoint left it.
    pub fn restore(
        events: &[EventSpec],
        next: usize,
        rng_state: u64,
        log: Vec<AppliedEvent>,
    ) -> Self {
        let mut hook = TimelineHook::new(events, 0);
        hook.next = next.min(hook.events.len());
        hook.rng = SplitMix64::new(rng_state);
        hook.log = log;
        hook
    }

    /// Consumes the hook, returning its event log.
    pub fn into_log(self) -> Vec<AppliedEvent> {
        self.log
    }

    /// Whether every timeline entry has fired.
    pub fn exhausted(&self) -> bool {
        self.next >= self.events.len()
    }

    /// Logs every entry that never fired (the run hit its round limit or
    /// was stopped first) as skipped, so the outcome's event log always
    /// accounts for the whole timeline. Returns one human-readable
    /// warning per unfired entry; the scenario engine surfaces these in
    /// [`crate::ScenarioOutcome::warnings`] instead of dropping them.
    pub fn mark_unfired(&mut self, final_round: usize) -> Vec<String> {
        let mut warnings = Vec::new();
        while self.next < self.events.len() {
            let spec = &self.events[self.next];
            self.next += 1;
            let action = Self::describe(&spec.action);
            warnings.push(format!(
                "event `{action}` at round {} never fired: run ended at round {final_round}",
                spec.round
            ));
            self.log.push(AppliedEvent {
                round: spec.round,
                action,
                removed: 0,
                inserted: 0,
                skipped: Some(format!(
                    "run ended at round {final_round} before event round {}",
                    spec.round
                )),
            });
        }
        warnings
    }

    fn describe(action: &EventAction) -> String {
        match action {
            EventAction::FailFraction { fraction } => format!("fail_fraction({fraction})"),
            EventAction::FailNodes { ids } => format!("fail_nodes({} ids)", ids.len()),
            EventAction::FailRegion { center, radius } => {
                format!("fail_region(({}, {}), r={radius})", center.0, center.1)
            }
            EventAction::DepleteBatteries { capacity, .. } => {
                format!("deplete_batteries(capacity={capacity})")
            }
            EventAction::Insert { placement } => {
                format!("insert({} nodes)", placement.node_count())
            }
            EventAction::SetK { k } => format!("set_k({k})"),
            EventAction::SetAlpha { alpha } => format!("set_alpha({alpha})"),
        }
    }

    /// Picks `count` distinct victims uniformly without replacement
    /// (partial Fisher–Yates over the index range), returned sorted.
    fn pick_victims(&mut self, n: usize, count: usize) -> Vec<NodeId> {
        let count = count.min(n);
        let mut pool: Vec<usize> = (0..n).collect();
        for i in 0..count {
            let j = i + (self.rng.next_u64() as usize) % (n - i);
            pool.swap(i, j);
        }
        let mut victims: Vec<usize> = pool[..count].to_vec();
        victims.sort_unstable();
        victims.into_iter().map(NodeId).collect()
    }

    fn fire(&mut self, sim: &mut Session, spec_round: usize, action: EventAction) {
        let mut entry = AppliedEvent {
            round: spec_round,
            action: Self::describe(&action),
            removed: 0,
            inserted: 0,
            skipped: None,
        };
        let event: Result<NetworkEvent, String> = match action {
            EventAction::FailFraction { fraction } => {
                if !(0.0..1.0).contains(&fraction) {
                    Err(format!("fraction {fraction} outside [0, 1)"))
                } else {
                    let n = sim.network().len();
                    let count = (fraction * n as f64).round() as usize;
                    Ok(NetworkEvent::FailNodes(self.pick_victims(n, count)))
                }
            }
            EventAction::FailNodes { ids } => Ok(NetworkEvent::FailNodes(
                ids.into_iter().map(NodeId).collect(),
            )),
            EventAction::FailRegion { center, radius } => {
                let c = Point::new(center.0, center.1);
                let doomed: Vec<NodeId> = sim
                    .network()
                    .positions()
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.distance(c) <= radius)
                    .map(|(i, _)| NodeId(i))
                    .collect();
                Ok(NetworkEvent::FailNodes(doomed))
            }
            EventAction::DepleteBatteries {
                capacity,
                move_cost,
                sense_cost,
                exponent,
            } => {
                let model = EnergyModel::new(1.0, exponent.max(1e-9));
                let rounds = sim.rounds_executed() as f64;
                let doomed: Vec<NodeId> = sim
                    .network()
                    .nodes()
                    .filter(|node| {
                        let spent = move_cost * node.distance_moved()
                            + sense_cost * rounds * model.energy(node.sensing_radius());
                        spent > capacity
                    })
                    .map(|node| node.id())
                    .collect();
                Ok(NetworkEvent::FailNodes(doomed))
            }
            EventAction::Insert { placement } => {
                let seed = self.rng.next_u64();
                match placement.build(sim.region(), seed) {
                    Ok(points) => Ok(NetworkEvent::InsertNodes(points)),
                    Err(e) => Err(e.to_string()),
                }
            }
            EventAction::SetK { k } => Ok(NetworkEvent::SetK(k)),
            EventAction::SetAlpha { alpha } => Ok(NetworkEvent::SetAlpha(alpha)),
        };
        match event {
            Ok(NetworkEvent::FailNodes(ids)) if ids.is_empty() => {
                // Nothing to remove (e.g. all batteries healthy) — a no-op,
                // not an error.
            }
            Ok(event) => match sim.apply_event(event) {
                Ok(outcome) => {
                    entry.removed = outcome.removed;
                    entry.inserted = outcome.inserted;
                }
                Err(e) => entry.skipped = Some(e.to_string()),
            },
            Err(reason) => entry.skipped = Some(reason),
        }
        self.log.push(entry);
    }
}

impl TimelineHook {
    /// Fires every not-yet-fired event scheduled at or before `round`.
    /// The engine calls this with `round = 0` before the first step so
    /// that round-0 events (dead-on-arrival failures, pre-run parameter
    /// changes) act before any movement.
    pub fn fire_due(&mut self, sim: &mut Session, round: usize) {
        while self.next < self.events.len() && self.events[self.next].round <= round {
            let spec = self.events[self.next].clone();
            self.next += 1;
            self.fire(sim, spec.round, spec.action);
        }
    }
}

impl Observer for TimelineHook {
    fn on_round_end(&mut self, sim: &mut Session, delta: &RoundDelta) -> HookAction {
        self.fire_due(sim, delta.report.round);
        if self.exhausted() {
            HookAction::Default
        } else {
            HookAction::KeepRunning
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{AlgorithmSpec, ScenarioSpec};

    fn sim(n: usize, k: usize) -> Session {
        let spec = ScenarioSpec::uniform("t", n, k);
        let region = spec.region.build().unwrap();
        let initial = spec.placement.build(&region, 11).unwrap();
        let config = AlgorithmSpec {
            k,
            max_rounds: 120,
            ..AlgorithmSpec::default()
        }
        .build(&region, n, 11)
        .unwrap();
        Session::builder(config)
            .region(region)
            .positions(initial)
            .build()
            .unwrap()
    }

    #[test]
    fn fail_fraction_kills_the_right_count() {
        let mut sim = sim(30, 1);
        let events = vec![EventSpec {
            round: 2,
            action: EventAction::FailFraction { fraction: 0.2 },
        }];
        let mut hook = TimelineHook::new(&events, 5);
        sim.run_with_observers(&mut [&mut hook]);
        assert_eq!(sim.network().len(), 24);
        let log = hook.into_log();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].removed, 6);
        assert!(log[0].skipped.is_none());
    }

    #[test]
    fn victim_choice_is_seed_deterministic() {
        let pick = |seed: u64| {
            let mut h = TimelineHook::new(&[], seed);
            h.pick_victims(50, 10)
        };
        assert_eq!(pick(9), pick(9));
        assert_ne!(pick(9), pick(10));
        let victims = pick(9);
        assert!(victims.windows(2).all(|w| w[0] < w[1]), "sorted, distinct");
    }

    #[test]
    fn timeline_fires_in_round_order_and_keeps_running() {
        let mut s = sim(20, 1);
        let events = vec![
            EventSpec {
                round: 90,
                action: EventAction::SetAlpha { alpha: 1.0 },
            },
            EventSpec {
                round: 3,
                action: EventAction::FailFraction { fraction: 0.1 },
            },
        ];
        let mut hook = TimelineHook::new(&events, 1);
        s.run_with_observers(&mut [&mut hook]);
        // Both events fired even though the run would have converged
        // before round 90 without the KeepRunning override.
        assert!(hook.exhausted());
        let log = hook.log();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].round, 3);
        assert_eq!(log[1].round, 90);
        assert_eq!(s.config().alpha, 1.0);
    }

    #[test]
    fn invalid_events_are_logged_not_fatal() {
        let mut s = sim(10, 1);
        let events = vec![EventSpec {
            round: 1,
            action: EventAction::SetK { k: 99 },
        }];
        let mut hook = TimelineHook::new(&events, 1);
        s.run_with_observers(&mut [&mut hook]);
        let log = hook.log();
        assert_eq!(log.len(), 1);
        assert!(log[0].skipped.is_some());
        assert_eq!(s.config().k, 1);
    }

    #[test]
    fn unfired_events_are_logged_as_skipped() {
        let mut s = sim(12, 1);
        let events = vec![
            EventSpec {
                round: 2,
                action: EventAction::FailFraction { fraction: 0.1 },
            },
            EventSpec {
                round: 10_000, // far past max_rounds
                action: EventAction::SetK { k: 2 },
            },
        ];
        let mut hook = TimelineHook::new(&events, 3);
        let summary = s.run_with_observers(&mut [&mut hook]);
        assert!(!hook.exhausted());
        let warnings = hook.mark_unfired(summary.rounds);
        assert!(hook.exhausted());
        assert_eq!(warnings.len(), 1, "one warning per unfired event");
        assert!(warnings[0].contains("never fired"), "{}", warnings[0]);
        let log = hook.log();
        assert_eq!(log.len(), 2);
        assert!(log[0].skipped.is_none());
        let reason = log[1].skipped.as_deref().expect("second event skipped");
        assert!(reason.contains("before event round 10000"), "{reason}");
    }

    #[test]
    fn depletion_spares_fresh_nodes() {
        let mut s = sim(15, 1);
        let events = vec![EventSpec {
            round: 1,
            action: EventAction::DepleteBatteries {
                capacity: f64::MAX / 4.0,
                move_cost: 1.0,
                sense_cost: 1.0,
                exponent: 2.0,
            },
        }];
        let mut hook = TimelineHook::new(&events, 1);
        s.run_with_observers(&mut [&mut hook]);
        assert_eq!(s.network().len(), 15, "huge capacity kills nobody");
        assert_eq!(hook.log().len(), 1);
        assert_eq!(hook.log()[0].removed, 0);
    }
}
