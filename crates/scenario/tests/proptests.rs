//! Property tests: scenario specs survive the TOML and JSON round trips
//! whatever their shape.

use laacad_scenario::{
    AlgorithmSpec, EvaluationSpec, EventAction, EventSpec, PlacementSpec, RegionSpec, ScenarioSpec,
};
use proptest::prelude::*;

fn coord() -> impl Strategy<Value = f64> {
    // Representative coordinate scale; rounded so values are "ordinary"
    // decimals (round-tripping itself must be exact for any f64 — a
    // dedicated case below checks gnarly values).
    (0.0f64..10.0).prop_map(|x| (x * 1e4).round() / 1e4)
}

fn region() -> impl Strategy<Value = RegionSpec> {
    (0usize..4, 0.5f64..20.0, 0.5f64..20.0, 0usize..7).prop_map(|(kind, a, b, name_idx)| match kind
    {
        0 => RegionSpec::Square { side: a },
        1 => RegionSpec::Rect {
            width: a,
            height: b,
        },
        2 => {
            let names = [
                "unit_square",
                "l_shape",
                "cross",
                "coast",
                "lakes",
                "corridor",
                "forest",
            ];
            RegionSpec::Named(names[name_idx].into())
        }
        _ => RegionSpec::Polygon {
            outer: vec![(0.0, 0.0), (a, 0.0), (a, b), (0.0, b)],
            holes: vec![vec![
                (a / 4.0, b / 4.0),
                (a / 2.0, b / 4.0),
                (a / 2.0, b / 2.0),
            ]],
        },
    })
}

fn placement() -> impl Strategy<Value = PlacementSpec> {
    (0usize..4, 1usize..200, coord(), coord(), 0.01f64..0.5).prop_map(
        |(kind, n, cx, cy, radius)| match kind {
            0 => PlacementSpec::Uniform { n },
            1 => PlacementSpec::Clustered {
                n,
                center: (cx, cy),
                radius,
            },
            2 => PlacementSpec::Corner { n, radius },
            _ => PlacementSpec::Custom {
                points: vec![(cx, cy), (cx + 0.125, cy), (cx, cy + 0.25)],
            },
        },
    )
}

fn event() -> impl Strategy<Value = EventSpec> {
    (
        0usize..7,
        1usize..300,
        0.01f64..0.99,
        1usize..6,
        coord(),
        coord(),
    )
        .prop_map(|(kind, round, x, k, cx, cy)| {
            let action = match kind {
                0 => EventAction::FailFraction { fraction: x },
                1 => EventAction::FailNodes {
                    ids: vec![k, k + 1, k + 7],
                },
                2 => EventAction::FailRegion {
                    center: (cx, cy),
                    radius: x,
                },
                3 => EventAction::DepleteBatteries {
                    capacity: x * 10.0,
                    move_cost: 1.0,
                    sense_cost: x,
                    exponent: 2.0,
                },
                4 => EventAction::Insert {
                    placement: PlacementSpec::Uniform { n: k },
                },
                5 => EventAction::SetK { k },
                _ => EventAction::SetAlpha { alpha: x },
            };
            EventSpec { round, action }
        })
}

fn spec() -> impl Strategy<Value = ScenarioSpec> {
    (
        region(),
        placement(),
        prop::collection::vec(event(), 0..5),
        1usize..5,
        0.05f64..1.0,
        10usize..500,
        1000usize..20000,
    )
        .prop_map(
            |(region, placement, events, k, alpha, max_rounds, samples)| ScenarioSpec {
                name: "proptest-spec".into(),
                description: "generated".into(),
                region,
                placement,
                laacad: AlgorithmSpec {
                    k,
                    alpha: (alpha * 1e4).round() / 1e4,
                    max_rounds,
                    ..AlgorithmSpec::default()
                },
                events,
                evaluation: EvaluationSpec {
                    coverage_samples: samples,
                    energy_exponent: 2.0,
                    ..EvaluationSpec::default()
                },
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn toml_round_trip(spec in spec()) {
        let text = spec.to_toml();
        let back = ScenarioSpec::from_toml(&text);
        prop_assert!(back.is_ok(), "reparse failed: {:?}\n{}", back.err(), text);
        prop_assert_eq!(spec, back.unwrap(), "TOML:\n{}", text);
    }

    #[test]
    fn json_round_trip(spec in spec()) {
        let text = spec.to_json();
        let back = ScenarioSpec::from_json(&text);
        prop_assert!(back.is_ok(), "reparse failed: {:?}\n{}", back.err(), text);
        prop_assert_eq!(spec, back.unwrap(), "JSON:\n{}", text);
    }

    #[test]
    fn arbitrary_floats_round_trip(x in -1.0e9f64..1.0e9, frac in 0.0f64..1.0) {
        // Shortest-round-trip float formatting is exact for any f64 the
        // grid or spec might carry.
        let gnarly = x * frac + frac;
        let mut spec = ScenarioSpec::uniform("floats", 5, 1);
        spec.laacad.epsilon = Some(gnarly.abs() + 1e-12);
        spec.laacad.gamma = Some(frac + 0.1);
        let back = ScenarioSpec::from_toml(&spec.to_toml()).unwrap();
        prop_assert_eq!(spec.clone(), back);
        let back = ScenarioSpec::from_json(&spec.to_json()).unwrap();
        prop_assert_eq!(spec, back);
    }
}
