//! The CI checkpoint/resume smoke: a 300-round failure+churn run
//! checkpointed at round 50, resumed, and diffed — the resumed outcome
//! must serialize to the very bytes of the uninterrupted run (JSONL and
//! CSV), and the checkpoint must survive a disk round-trip.

use laacad_scenario::{
    resume_scenario, run_scenario, run_scenario_checkpointed, to_csv, to_jsonl, CampaignSpec,
    CellResult, EventAction, EventSpec, PlacementSpec, ScenarioCheckpoint, ScenarioOutcome,
    ScenarioSpec,
};

/// 40 nodes, k = 2, a 300-round budget, and a failure+churn timeline
/// spanning the checkpoint: a 25% crash before round 50, reinforcements
/// and a second failure long after it.
fn churn_300_spec() -> ScenarioSpec {
    let mut spec = ScenarioSpec::uniform("ckpt-roundtrip", 40, 2);
    spec.laacad.max_rounds = 300;
    spec.evaluation.round_coverage_samples = 400;
    spec.events = vec![
        EventSpec {
            round: 30,
            action: EventAction::FailFraction { fraction: 0.25 },
        },
        EventSpec {
            round: 100,
            action: EventAction::Insert {
                placement: PlacementSpec::Uniform { n: 10 },
            },
        },
        EventSpec {
            round: 200,
            action: EventAction::FailFraction { fraction: 0.1 },
        },
    ];
    spec
}

/// Serializes one outcome the way the campaign result store would, so
/// "diff the JSONL" is a literal byte comparison.
fn result_bytes(spec: &ScenarioSpec, seed: u64, outcome: ScenarioOutcome) -> (String, String) {
    let campaign = CampaignSpec::over_seeds(spec.clone(), [seed]);
    let mut cell = campaign.expand().unwrap().remove(0);
    let results = [CellResult {
        cell: laacad_scenario::CellInfo {
            index: cell.index,
            scenario: std::mem::take(&mut cell.scenario.name),
            seed: cell.seed,
            n: cell.n,
            k: cell.k,
            alpha: cell.alpha,
            gamma: cell.gamma,
            loss: cell.loss,
            delay: cell.delay,
            corruption: cell.corruption,
        },
        outcome: Ok(outcome),
    }];
    (to_jsonl(&results), to_csv(&results))
}

#[test]
fn checkpoint_at_round_50_resumes_to_identical_jsonl() {
    let spec = churn_300_spec();
    let seed = 1_234;

    let plain = run_scenario(&spec, seed).unwrap();
    assert!(
        plain.summary.rounds > 100,
        "the smoke needs a long run; got {} rounds",
        plain.summary.rounds
    );

    // Checkpoint every 50 rounds, keep the round-50 state, and push it
    // through bytes — the shape a killed process would leave on disk.
    let mut round50: Option<Vec<u8>> = None;
    let checkpointed = run_scenario_checkpointed(&spec, seed, 50, &mut |ckpt| {
        if ckpt.round() == 50 {
            round50 = Some(ckpt.to_bytes());
        }
        Ok(())
    })
    .unwrap();
    let bytes = round50.expect("round 50 checkpoint was offered");
    let ckpt = ScenarioCheckpoint::from_bytes(&bytes).unwrap();
    assert_eq!(ckpt.round(), 50);
    let resumed = resume_scenario(&spec, seed, &ckpt, 0, &mut |_| Ok(())).unwrap();

    let (plain_jsonl, plain_csv) = result_bytes(&spec, seed, plain);
    let (ckpt_jsonl, _) = result_bytes(&spec, seed, checkpointed);
    let (resumed_jsonl, resumed_csv) = result_bytes(&spec, seed, resumed);
    assert_eq!(plain_jsonl, ckpt_jsonl, "checkpointing changed the run");
    assert_eq!(plain_jsonl, resumed_jsonl, "resume diverged from the run");
    assert_eq!(plain_csv, resumed_csv);
}
