//! Lints every shipped scenario/campaign document under `scenarios/`:
//! each file must parse, expand its grid, and build every cell's
//! region + placement + config. Run by CI so a broken TOML is caught
//! at review time, not when someone finally runs the campaign.

use laacad_scenario::CampaignSpec;
use std::path::PathBuf;

fn scenarios_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

#[test]
fn every_shipped_scenario_parses_and_builds() {
    let dir = scenarios_dir();
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .map(|entry| entry.unwrap().path())
        .filter(|p| {
            matches!(
                p.extension().and_then(|e| e.to_str()),
                Some("toml") | Some("json")
            )
        })
        .collect();
    paths.sort();
    assert!(
        !paths.is_empty(),
        "no scenario documents found in {}",
        dir.display()
    );
    for path in &paths {
        let name = path.file_name().unwrap().to_string_lossy();
        let campaign =
            CampaignSpec::from_path(path).unwrap_or_else(|e| panic!("{name}: does not parse: {e}"));
        let cells = campaign
            .expand()
            .unwrap_or_else(|e| panic!("{name}: grid does not expand: {e}"));
        assert!(!cells.is_empty(), "{name}: grid expands to zero cells");
        for cell in &cells {
            // Build (don't run) every cell: region, placement and
            // config validation all happen here.
            let spec = &cell.scenario;
            let region = spec
                .region
                .build()
                .unwrap_or_else(|e| panic!("{name} cell {}: bad region: {e}", cell.index));
            let positions = spec
                .placement
                .build(&region, cell.seed)
                .unwrap_or_else(|e| panic!("{name} cell {}: bad placement: {e}", cell.index));
            spec.laacad
                .build(&region, positions.len(), cell.seed)
                .unwrap_or_else(|e| panic!("{name} cell {}: bad config: {e}", cell.index));
        }
    }
}

/// The shipped fault sweep keeps its anchor shape: a (loss = 0,
/// delay = 0) cell must be present so every regeneration re-checks the
/// async-vs-sync bit-identity corner.
#[test]
fn async_faults_sweep_includes_the_fault_free_anchor_cell() {
    let campaign = CampaignSpec::from_path(&scenarios_dir().join("async_faults.toml")).unwrap();
    let cells = campaign.expand().unwrap();
    assert!(
        cells
            .iter()
            .any(|c| c.loss == Some(0.0) && c.delay == Some(0.0)),
        "the loss=0, delay=0 anchor cell is missing"
    );
    assert!(cells.iter().all(|c| c.scenario.laacad.faults.is_some()));
}
