//! The streaming result store must be invisible in the artifacts: a
//! campaign streamed row-by-row to disk (flush per completed cell)
//! produces **byte-identical** JSONL and CSV files to the buffered
//! [`ResultStore::write`] path on the same results — and the in-memory
//! results it returns match [`run_campaign`]'s exactly.

use laacad_scenario::{
    run_campaign, run_campaign_streamed, CampaignSpec, ResultStore, ScenarioSpec,
};

fn campaign() -> CampaignSpec {
    let mut spec = ScenarioSpec::uniform("stream", 10, 1);
    spec.laacad.max_rounds = 30;
    let mut campaign = CampaignSpec::over_seeds(spec, [1, 2, 3]);
    campaign.grid.k = vec![1, 2];
    campaign
}

#[test]
fn streamed_files_are_byte_identical_to_buffered_files() {
    let campaign = campaign();
    let buffered_dir = std::env::temp_dir().join("laacad-stream-test-buffered");
    let streamed_dir = std::env::temp_dir().join("laacad-stream-test-streamed");
    let _ = std::fs::remove_dir_all(&buffered_dir);
    let _ = std::fs::remove_dir_all(&streamed_dir);

    let results = run_campaign(&campaign).unwrap();
    let (bj, bc) = ResultStore::new(&buffered_dir)
        .write(&campaign.name, &results)
        .unwrap();

    let (sj, sc, streamed_results) =
        run_campaign_streamed(&campaign, &ResultStore::new(&streamed_dir)).unwrap();

    assert_eq!(results, streamed_results, "in-memory results diverged");
    assert_eq!(
        std::fs::read(&bj).unwrap(),
        std::fs::read(&sj).unwrap(),
        "JSONL files diverged"
    );
    assert_eq!(
        std::fs::read(&bc).unwrap(),
        std::fs::read(&sc).unwrap(),
        "CSV files diverged"
    );
    let _ = std::fs::remove_dir_all(&buffered_dir);
    let _ = std::fs::remove_dir_all(&streamed_dir);
}

#[test]
fn streamed_rows_include_failed_cells() {
    // A cell whose overrides cannot build reports its error through the
    // stream exactly like the buffered path.
    let mut campaign = campaign();
    campaign.scenario.laacad.gamma = Some(-1.0); // invalid: every cell fails
    let dir = std::env::temp_dir().join("laacad-stream-test-errors");
    let _ = std::fs::remove_dir_all(&dir);
    let (jsonl, _, results) = run_campaign_streamed(&campaign, &ResultStore::new(&dir)).unwrap();
    assert!(results.iter().all(|r| r.outcome.is_err()));
    let text = std::fs::read_to_string(&jsonl).unwrap();
    assert_eq!(text.lines().count(), results.len());
    assert!(text.lines().all(|l| l.contains("\"error\"")));
    let _ = std::fs::remove_dir_all(&dir);
}
