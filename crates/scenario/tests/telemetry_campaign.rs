//! The observed campaign runner: per-cell telemetry files beside the
//! result store, a live progress feed, and — above all — results
//! byte-identical to a telemetry-free run. Also pins the shipped
//! `scenarios/telemetry_demo.toml` example (spec-level telemetry knob +
//! mixed zip/cross grid).

use laacad::telemetry::validate::validate_metrics_jsonl;
use laacad_scenario::{
    run_campaign_observed, run_campaign_streamed, CampaignProgress, CampaignRunOptions,
    CampaignSpec, ResultStore, ScenarioSpec,
};
use std::path::{Path, PathBuf};

fn campaign() -> CampaignSpec {
    let mut spec = ScenarioSpec::uniform("obs", 12, 1);
    spec.laacad.max_rounds = 40;
    let mut campaign = CampaignSpec::over_seeds(spec, [1, 2]);
    campaign.grid.k = vec![1, 2];
    campaign
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("laacad-telemetry-campaign-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn telemetry_paths(dir: &Path, name: &str, index: usize) -> (PathBuf, PathBuf) {
    (
        dir.join(format!("{name}.cell{index}.telemetry.jsonl")),
        dir.join(format!("{name}.cell{index}.trace.json")),
    )
}

#[test]
fn observed_campaign_emits_valid_per_cell_telemetry() {
    let campaign = campaign();
    let plain_dir = fresh_dir("plain");
    let observed_dir = fresh_dir("observed");

    let (pj, pc, plain) = run_campaign_streamed(&campaign, &ResultStore::new(&plain_dir)).unwrap();

    let mut progress: Vec<CampaignProgress> = Vec::new();
    let mut on_progress = |p: &CampaignProgress| progress.push(p.clone());
    let (oj, oc, observed) = run_campaign_observed(
        &campaign,
        &ResultStore::new(&observed_dir),
        CampaignRunOptions {
            telemetry: true,
            progress: Some(&mut on_progress),
        },
    )
    .unwrap();

    // Telemetry is observational: in-memory results and the result
    // files stay byte-identical to the telemetry-free run.
    assert_eq!(plain, observed, "telemetry changed the results");
    assert_eq!(std::fs::read(&pj).unwrap(), std::fs::read(&oj).unwrap());
    assert_eq!(std::fs::read(&pc).unwrap(), std::fs::read(&oc).unwrap());

    // One metric stream + one trace per cell, both well-formed.
    for r in &observed {
        let (metrics, trace) = telemetry_paths(&observed_dir, &campaign.name, r.cell.index);
        let doc = std::fs::read_to_string(&metrics).unwrap();
        let summary = validate_metrics_jsonl(&doc).expect("schema-valid metric stream");
        let outcome = r.outcome.as_ref().unwrap();
        assert_eq!(summary.rounds, outcome.summary.rounds as u64);
        assert_eq!(
            summary.counter_total("messages_broadcast"),
            outcome.summary.messages.broadcast
        );
        assert!(summary.counter_total("ring_searches") > 0);
        let trace = std::fs::read_to_string(&trace).unwrap();
        assert!(
            trace.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["),
            "not a Chrome trace-event file"
        );
        assert!(trace.contains("\"name\":\"round\""));
    }

    // The progress feed fired once per cell, in expansion order, with a
    // live throughput estimate.
    assert_eq!(progress.len(), observed.len());
    for (i, p) in progress.iter().enumerate() {
        assert_eq!(p.completed, i + 1);
        assert_eq!(p.total, observed.len());
    }
    let last = progress.last().unwrap();
    assert!(last.cells_per_minute > 0.0);
    assert_eq!(last.eta_secs, Some(0.0));

    let _ = std::fs::remove_dir_all(&plain_dir);
    let _ = std::fs::remove_dir_all(&observed_dir);
}

#[test]
fn metric_streams_are_byte_stable_across_reruns() {
    let campaign = campaign();
    let dir_a = fresh_dir("rerun-a");
    let dir_b = fresh_dir("rerun-b");
    for dir in [&dir_a, &dir_b] {
        run_campaign_observed(
            &campaign,
            &ResultStore::new(dir),
            CampaignRunOptions {
                telemetry: true,
                progress: None,
            },
        )
        .unwrap();
    }
    for index in 0..4 {
        let (a, _) = telemetry_paths(&dir_a, &campaign.name, index);
        let (b, _) = telemetry_paths(&dir_b, &campaign.name, index);
        assert_eq!(
            std::fs::read(&a).unwrap(),
            std::fs::read(&b).unwrap(),
            "cell {index} metric stream is not byte-stable"
        );
    }
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

#[test]
fn spec_level_telemetry_knob_records_without_options() {
    // `laacad.telemetry = true` in the scenario is enough: the default
    // streamed entry point records those cells.
    let mut campaign = campaign();
    campaign.scenario.laacad.telemetry = true;
    let dir = fresh_dir("spec-knob");
    let (_, _, results) = run_campaign_streamed(&campaign, &ResultStore::new(&dir)).unwrap();
    for r in &results {
        let (metrics, trace) = telemetry_paths(&dir, &campaign.name, r.cell.index);
        assert!(metrics.exists(), "cell {} metrics missing", r.cell.index);
        assert!(trace.exists(), "cell {} trace missing", r.cell.index);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn telemetry_demo_spec_loads_and_expands() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../scenarios")
        .join("telemetry_demo.toml");
    let campaign = CampaignSpec::from_path(&path).unwrap();
    assert!(campaign.scenario.laacad.telemetry, "demo enables telemetry");
    let cells = campaign.expand().unwrap();
    assert_eq!(cells.len(), 8, "2 fused (n, gamma) tuples × 2 k × 2 seeds");
    // The fused axis holds (n, gamma) pairs together.
    for c in &cells {
        match c.n {
            40 => assert_eq!(c.gamma, Some(0.4)),
            90 => assert_eq!(c.gamma, Some(0.28)),
            other => panic!("unexpected n {other}"),
        }
    }
}
