//! Campaign determinism: the same spec and seed grid must produce
//! byte-identical JSONL/CSV results, run after run, regardless of how
//! the parallel executor schedules cells.

use laacad_scenario::{run_campaign, to_csv, to_jsonl, CampaignSpec, ScenarioSpec};

const SPEC: &str = r#"
name = "determinism-probe"

[scenario]
name = "determinism-probe"

[scenario.region]
kind = "named"
name = "unit_square"

[scenario.placement]
kind = "uniform"
n = 18

[scenario.laacad]
k = 1
alpha = 0.6
gamma = 0.4
max_rounds = 60

[[scenario.events]]
round = 12
action = "fail_fraction"
fraction = 0.2

[[scenario.events]]
round = 20
action = "insert"

[scenario.events.placement]
kind = "clustered"
n = 3
center = [0.5, 0.5]
radius = 0.1

[scenario.evaluation]
coverage_samples = 2000

[grid]
seeds = [1, 2, 3, 4, 5, 6]
k = [1, 2]
"#;

#[test]
fn same_campaign_same_bytes() {
    let campaign = CampaignSpec::from_toml(SPEC).expect("spec parses");
    let first = run_campaign(&campaign).expect("first run");
    let second = run_campaign(&campaign).expect("second run");

    let jsonl_a = to_jsonl(&first);
    let jsonl_b = to_jsonl(&second);
    assert_eq!(jsonl_a.len(), jsonl_b.len());
    assert!(jsonl_a == jsonl_b, "JSONL results differ between reruns");
    assert_eq!(to_csv(&first), to_csv(&second));

    // Sanity: the campaign actually did work — 12 cells, events fired.
    assert_eq!(jsonl_a.lines().count(), 12);
    assert!(first.iter().all(|c| c.outcome.is_ok()));
    let with_events = first
        .iter()
        .filter(|c| c.outcome.as_ref().unwrap().events.len() == 2)
        .count();
    assert_eq!(with_events, 12, "both timeline events fire in every cell");
}

#[test]
fn engine_thread_count_never_changes_results() {
    // The per-cell `threads` knob parallelizes the synchronous round
    // engine itself; JSONL stores must stay byte-identical across it.
    let campaign = CampaignSpec::from_toml(SPEC).expect("spec parses");
    let serial = to_jsonl(&run_campaign(&campaign).expect("serial run"));
    for threads in [0usize, 4] {
        let mut parallel_campaign = campaign.clone();
        parallel_campaign.scenario.laacad.threads = Some(threads);
        let parallel = to_jsonl(&run_campaign(&parallel_campaign).expect("parallel run"));
        assert!(
            serial == parallel,
            "threads={threads} changed campaign results"
        );
    }
}

#[test]
fn different_seeds_different_results() {
    let campaign = CampaignSpec::from_toml(SPEC).expect("spec parses");
    let results = run_campaign(&campaign).expect("run");
    let a = results[0].outcome.as_ref().unwrap();
    let b = results[1].outcome.as_ref().unwrap();
    assert_ne!(
        a.summary.max_sensing_radius, b.summary.max_sensing_radius,
        "distinct seeds must explore distinct deployments"
    );
}

#[test]
fn programmatic_and_parsed_specs_agree() {
    // The same campaign built in code and parsed from its own TOML
    // serialization must produce identical results.
    let campaign = CampaignSpec::from_toml(SPEC).expect("spec parses");
    let reparsed = CampaignSpec::from_toml(&{
        let mut t = campaign.to_toml();
        t.push('\n');
        t
    })
    .expect("round-tripped spec parses");
    assert_eq!(campaign, reparsed);
    let direct = {
        let mut spec = ScenarioSpec::from_toml(&campaign.scenario.to_toml()).unwrap();
        spec.name = campaign.scenario.name.clone();
        spec
    };
    assert_eq!(direct, campaign.scenario);
    let a = run_campaign(&campaign).unwrap();
    let b = run_campaign(&reparsed).unwrap();
    assert_eq!(to_jsonl(&a), to_jsonl(&b));
}
