//! Campaign-level checkpointing: `checkpoint_every` must be purely
//! observational (same bytes as a plain run), resumable (a pre-existing
//! checkpoint file picks the cell up mid-run and still lands on
//! identical results), and self-cleaning (no `.checkpoint` files left
//! after a completed campaign). Corrupt checkpoint files are ignored
//! rather than wedging the campaign.

use laacad_scenario::{
    run_campaign_streamed, run_scenario_checkpointed, CampaignSpec, EventAction, EventSpec,
    PlacementSpec, ResultStore, ScenarioSpec,
};
use std::path::PathBuf;

/// A churny scenario so the resume path has to restore the timeline
/// hook (fired-event log + RNG stream), not just engine state.
fn churn_spec() -> ScenarioSpec {
    let mut spec = ScenarioSpec::uniform("ckpt-campaign", 24, 1);
    spec.laacad.max_rounds = 60;
    spec.evaluation.round_coverage_samples = 400;
    spec.events = vec![
        EventSpec {
            round: 3,
            action: EventAction::FailFraction { fraction: 0.2 },
        },
        EventSpec {
            round: 12,
            action: EventAction::Insert {
                placement: PlacementSpec::Uniform { n: 5 },
            },
        },
        EventSpec {
            round: 20,
            action: EventAction::FailFraction { fraction: 0.1 },
        },
    ];
    spec
}

fn campaign(checkpoint_every: usize) -> CampaignSpec {
    let mut campaign = CampaignSpec::over_seeds(churn_spec(), [1, 2]);
    campaign.checkpoint_every = checkpoint_every;
    campaign
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("laacad-ckpt-campaign-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn checkpoint_files(dir: &PathBuf) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "checkpoint"))
        .collect();
    files.sort();
    files
}

#[test]
fn checkpointed_campaign_matches_plain_run_and_cleans_up() {
    let plain_dir = fresh_dir("plain");
    let ckpt_dir = fresh_dir("every7");

    let (pj, pc, plain) =
        run_campaign_streamed(&campaign(0), &ResultStore::new(&plain_dir)).unwrap();
    let (cj, cc, ckpt) = run_campaign_streamed(&campaign(7), &ResultStore::new(&ckpt_dir)).unwrap();

    assert_eq!(plain, ckpt, "checkpointing changed the results");
    assert_eq!(std::fs::read(&pj).unwrap(), std::fs::read(&cj).unwrap());
    assert_eq!(std::fs::read(&pc).unwrap(), std::fs::read(&cc).unwrap());
    assert!(
        checkpoint_files(&ckpt_dir).is_empty(),
        "completed cells must remove their checkpoint files"
    );

    let _ = std::fs::remove_dir_all(&plain_dir);
    let _ = std::fs::remove_dir_all(&ckpt_dir);
}

#[test]
fn campaign_resumes_from_existing_checkpoint_file() {
    let plain_dir = fresh_dir("resume-plain");
    let resume_dir = fresh_dir("resume");

    let (pj, pc, plain) =
        run_campaign_streamed(&campaign(0), &ResultStore::new(&plain_dir)).unwrap();

    // Simulate a killed earlier run: capture cell 0's mid-run state
    // (seed 1, the checkpoint from round 14 — after the failure and the
    // insert fired) and plant it where the campaign looks for it.
    let spec = churn_spec();
    let mut planted: Option<Vec<u8>> = None;
    run_scenario_checkpointed(&spec, 1, 7, &mut |ckpt| {
        if ckpt.round() == 14 {
            planted = Some(ckpt.to_bytes());
        }
        Ok(())
    })
    .unwrap();
    let planted = planted.expect("round-14 checkpoint was offered");
    std::fs::create_dir_all(&resume_dir).unwrap();
    let campaign7 = campaign(7);
    let cell0 = resume_dir.join(format!("{}.cell0.checkpoint", campaign7.name));
    std::fs::write(&cell0, &planted).unwrap();

    let (rj, rc, resumed) =
        run_campaign_streamed(&campaign7, &ResultStore::new(&resume_dir)).unwrap();

    assert_eq!(plain, resumed, "resumed cell diverged from a fresh run");
    assert_eq!(std::fs::read(&pj).unwrap(), std::fs::read(&rj).unwrap());
    assert_eq!(std::fs::read(&pc).unwrap(), std::fs::read(&rc).unwrap());
    assert!(!cell0.exists(), "consumed checkpoint must be removed");

    let _ = std::fs::remove_dir_all(&plain_dir);
    let _ = std::fs::remove_dir_all(&resume_dir);
}

#[test]
fn corrupt_checkpoint_file_is_ignored_not_fatal() {
    let plain_dir = fresh_dir("corrupt-plain");
    let corrupt_dir = fresh_dir("corrupt");

    let (_, _, plain) = run_campaign_streamed(&campaign(0), &ResultStore::new(&plain_dir)).unwrap();

    std::fs::create_dir_all(&corrupt_dir).unwrap();
    let campaign7 = campaign(7);
    let cell0 = corrupt_dir.join(format!("{}.cell0.checkpoint", campaign7.name));
    std::fs::write(&cell0, b"laacad-checkpoint/1\ngarbage").unwrap();

    let (_, _, results) =
        run_campaign_streamed(&campaign7, &ResultStore::new(&corrupt_dir)).unwrap();
    assert_eq!(
        plain, results,
        "corrupt checkpoint must fall back to a fresh run"
    );
    assert!(!cell0.exists());

    let _ = std::fs::remove_dir_all(&plain_dir);
    let _ = std::fs::remove_dir_all(&corrupt_dir);
}
