//! The `[faults]` path through the scenario layer: spec round-trips,
//! deterministic asynchronous runs with convergence-under-faults
//! metrics, fault grid axes, and the events × faults exclusion.

use laacad_scenario::{
    run_scenario, BackoffSpec, CampaignSpec, CrashSpec, DelaySpec, EventAction, EventSpec,
    FaultSpec, PartitionKindSpec, PartitionSpec, ScenarioSpec,
};

fn faulty_spec(name: &str, loss: f64) -> ScenarioSpec {
    let mut spec = ScenarioSpec::uniform(name, 16, 1);
    spec.laacad.max_rounds = 400;
    spec.laacad.faults = Some(FaultSpec {
        loss,
        ..FaultSpec::default()
    });
    spec
}

#[test]
fn faults_toml_round_trips() {
    let mut spec = faulty_spec("rt", 0.1);
    {
        let f = spec.laacad.faults.as_mut().unwrap();
        f.duplicate = 0.05;
        f.jitter = 0.2;
        f.delay = DelaySpec::Exp { mean: 1.5 };
        f.max_retries = 5;
        f.crash = vec![CrashSpec {
            node: 3,
            at: 40,
            recover_at: Some(200),
        }];
    }
    let text = spec.to_toml();
    assert!(text.contains("[faults]"), "TOML:\n{text}");
    let back = ScenarioSpec::from_toml(&text).unwrap();
    assert_eq!(spec, back, "TOML:\n{text}");

    // Defaults stay implicit: a default FaultSpec serializes to an
    // empty table and decodes back to itself.
    let bare = faulty_spec("bare", FaultSpec::default().loss);
    let back = ScenarioSpec::from_toml(&bare.to_toml()).unwrap();
    assert_eq!(bare, back);
}

#[test]
fn faulty_scenario_runs_deterministically_with_metrics() {
    let spec = faulty_spec("async-det", 0.1);
    let a = run_scenario(&spec, 11).unwrap();
    let b = run_scenario(&spec, 11).unwrap();
    assert_eq!(a, b, "same spec + seed must replay byte for byte");

    let f = a.faults.as_ref().expect("fault metrics present");
    assert!(f.protocol.lost > 0, "loss knob must drop messages");
    assert!(f.baseline_rounds > 0);
    assert!(f.message_overhead > 0.0);
    assert!(f.baseline_coverage > 0.9);
    assert!(f.coverage_dip >= 0.0);
    assert!(a.coverage.covered_fraction > 0.9);
    // The async path reports per-round series like the sync path.
    assert!(!a.rounds.is_empty());
    assert_eq!(a.final_n, 16);

    let c = run_scenario(&spec, 12).unwrap();
    assert_ne!(a.summary.max_sensing_radius, c.summary.max_sensing_radius);
}

#[test]
fn fault_free_faults_section_still_uses_async_executor() {
    let spec = faulty_spec("async-clean", 0.0);
    let out = run_scenario(&spec, 3).unwrap();
    let f = out.faults.as_ref().unwrap();
    assert_eq!(f.termination, "converged");
    assert_eq!(f.protocol.lost, 0);
    // Zero faults: the async run matches its own sync baseline exactly.
    assert_eq!(f.rounds, f.baseline_rounds);
    assert_eq!(f.coverage_dip, 0.0);
    assert!(out.warnings.is_empty());
}

#[test]
fn events_and_faults_are_mutually_exclusive() {
    let mut spec = faulty_spec("clash", 0.1);
    spec.events.push(EventSpec {
        round: 5,
        action: EventAction::FailFraction { fraction: 0.1 },
    });
    let err = run_scenario(&spec, 1).unwrap_err();
    assert!(err.to_string().contains("[faults]"), "{err}");
}

#[test]
fn outcome_serializes_fault_metrics() {
    let spec = faulty_spec("json", 0.1);
    let out = run_scenario(&spec, 2).unwrap();
    let line = out.to_value();
    let f = line.get("faults").expect("faults table serialized");
    assert!(f.get("termination").is_some());
    assert!(f.get("message_overhead").is_some());
    assert!(f.get("protocol").unwrap().get("lost").is_some());
}

#[test]
fn loss_and_delay_grid_axes_cross_and_override() {
    let mut campaign = CampaignSpec::over_seeds(faulty_spec("sweep", 0.0), [1]);
    campaign.grid.loss = vec![0.0, 0.1];
    campaign.grid.delay = vec![0.0, 2.0];
    let cells = campaign.expand().unwrap();
    assert_eq!(cells.len(), 4);
    let params: Vec<(Option<f64>, Option<f64>)> = cells.iter().map(|c| (c.loss, c.delay)).collect();
    assert_eq!(
        params,
        vec![
            (Some(0.0), Some(0.0)),
            (Some(0.0), Some(2.0)),
            (Some(0.1), Some(0.0)),
            (Some(0.1), Some(2.0)),
        ]
    );
    for cell in &cells {
        let f = cell.scenario.laacad.faults.as_ref().unwrap();
        assert_eq!(f.loss, cell.loss.unwrap());
        match cell.delay.unwrap() {
            0.0 => assert_eq!(f.delay, DelaySpec::None),
            m => assert_eq!(f.delay, DelaySpec::Exp { mean: m }),
        }
    }

    // Round trip the grid axes through TOML.
    let text = campaign.to_toml();
    let back = CampaignSpec::from_toml(&text).unwrap();
    assert_eq!(campaign, back, "TOML:\n{text}");
}

#[test]
fn fault_axes_without_faults_section_fail_cleanly() {
    let mut campaign = CampaignSpec::over_seeds(ScenarioSpec::uniform("plain", 10, 1), [1]);
    campaign.grid.loss = vec![0.1];
    let err = campaign.expand().unwrap_err();
    assert!(err.to_string().contains("[faults]"), "{err}");
}

#[test]
fn partition_heal_recovers_coverage_to_baseline() {
    let mut spec = faulty_spec("heal", 0.0);
    {
        let f = spec.laacad.faults.as_mut().unwrap();
        f.partition = vec![PartitionSpec {
            kind: PartitionKindSpec::Bipartition {
                axis: 'x',
                coord: 0.5,
            },
            at: 10,
            heal_at: Some(150),
        }];
        f.probe_every = 8;
    }
    let out = run_scenario(&spec, 5).unwrap();
    let f = out.faults.as_ref().expect("fault metrics present");

    // The probes observed the open window and measured its floor…
    let floor = f
        .partition_coverage_floor
        .expect("probes ran during the partition window");
    assert!((0.0..=1.0).contains(&floor));
    // …and the recovery time from heal to last movement is reported.
    let recovery = f.heal_recovery_ticks.expect("the partition healed");
    assert!(recovery > 0, "nodes must keep adjusting after the heal");

    // The acceptance criterion: after the heal, coverage recovers to
    // the fault-free baseline (within the evaluation's sampling noise).
    assert!(
        out.coverage.covered_fraction >= f.baseline_coverage - 0.02,
        "final coverage {} did not recover to baseline {}",
        out.coverage.covered_fraction,
        f.baseline_coverage
    );
    assert_eq!(f.protocol.corrupted, 0);
    assert!(f.protocol.partition_dropped > 0, "the partition must bite");

    // Determinism holds with partitions + probes in play.
    let again = run_scenario(&spec, 5).unwrap();
    assert_eq!(out, again);
}

#[test]
fn validated_corruption_quarantines_and_reports() {
    let mut spec = faulty_spec("byzantine", 0.0);
    {
        let f = spec.laacad.faults.as_mut().unwrap();
        f.corruption_rate = 0.15;
    }
    let out = run_scenario(&spec, 9).unwrap();
    let f = out.faults.as_ref().unwrap();
    assert!(
        f.protocol.corrupted > 0,
        "corruption knob must mutate hellos"
    );
    assert!(f.quarantined > 0, "validation must catch liars");
    assert_eq!(f.corrupted_accepted, 0, "validated runs absorb no lies");
    assert!(
        !out.warnings.iter().any(|w| w.contains("corrupted")),
        "validated corruption is handled, not warned about: {:?}",
        out.warnings
    );

    // The new counters ride the JSONL serialization.
    let line = out.to_value();
    let ft = line.get("faults").unwrap();
    assert!(ft.get("quarantined").is_some());
    assert!(ft.get("protocol").unwrap().get("corrupted").is_some());
}

#[test]
fn unvalidated_corruption_surfaces_divergence_warning() {
    let mut spec = faulty_spec("gullible", 0.0);
    {
        let f = spec.laacad.faults.as_mut().unwrap();
        f.corruption_rate = 0.2;
        f.corruption_validate = false;
    }
    let out = run_scenario(&spec, 9).unwrap();
    let f = out.faults.as_ref().unwrap();
    assert!(f.corrupted_accepted > 0, "validation off must absorb lies");
    assert_eq!(f.quarantined, 0);
    assert!(
        out.warnings
            .iter()
            .any(|w| w.contains("corrupted payloads were accepted")),
        "divergence must be reported, not silent: {:?}",
        out.warnings
    );
}

#[test]
fn adaptive_backoff_and_drift_run_through_the_scenario_layer() {
    let mut spec = faulty_spec("adaptive", 0.1);
    {
        let f = spec.laacad.faults.as_mut().unwrap();
        f.backoff = BackoffSpec::Adaptive {
            cap: 64,
            jitter: 0.3,
        };
        f.drift_rate = 0.05;
        f.drift_skew = 2;
    }
    let a = run_scenario(&spec, 4).unwrap();
    let b = run_scenario(&spec, 4).unwrap();
    assert_eq!(a, b, "adaptive backoff + drift must stay deterministic");
    let f = a.faults.as_ref().unwrap();
    assert!(
        f.protocol.rtt_samples > 0,
        "acks must feed the RTT estimator"
    );
    assert!(a.coverage.covered_fraction > 0.9);
}
