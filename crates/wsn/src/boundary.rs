//! Boundary-node detection.
//!
//! Algorithm 2 treats nodes on the network boundary specially (Fig. 3).
//! The paper delegates detection to an external service (UNFOLD, ref
//! \[29\]); we substitute two standard geometric detectors behind one trait
//! (see DESIGN.md §3 — the ring-saturation fallback in the core crate
//! keeps LAACAD correct even when a detector misclassifies).

use crate::network::Network;
use crate::node::NodeId;
use laacad_geom::{convex_hull, Point};

/// A boundary-detection service.
pub trait BoundaryDetector {
    /// Returns `true` when `id` should be treated as a network-boundary
    /// node.
    fn is_boundary(&self, net: &Network, id: NodeId) -> bool;
}

/// Angle-gap detector: a node is a boundary node when the directions to
/// its neighbors (within `radius`) leave an angular gap larger than
/// `gap_threshold`.
///
/// Interior nodes of a reasonably dense deployment are surrounded
/// (max gap < ~π/2); hull nodes always have a gap ≥ π.
#[derive(Debug, Clone, Copy)]
pub struct AngleGapDetector {
    /// Neighborhood radius used to collect witnesses.
    pub radius: f64,
    /// Gap (radians) above which the node counts as boundary.
    pub gap_threshold: f64,
}

impl AngleGapDetector {
    /// Detector with the conventional 2π/3 gap threshold.
    pub fn new(radius: f64) -> Self {
        AngleGapDetector {
            radius,
            gap_threshold: 2.0 * std::f64::consts::FRAC_PI_3,
        }
    }
}

impl BoundaryDetector for AngleGapDetector {
    fn is_boundary(&self, net: &Network, id: NodeId) -> bool {
        let origin = net.position(id);
        let neighbors: Vec<Point> = net
            .nodes_within(origin, self.radius)
            .into_iter()
            .filter(|&n| n != id)
            .map(|n| net.position(n))
            .filter(|p| p.distance(origin) > 1e-12)
            .collect();
        if neighbors.len() < 3 {
            return true;
        }
        let mut angles: Vec<f64> = neighbors
            .iter()
            .map(|&p| laacad_geom::normalize_angle((p - origin).angle()))
            .collect();
        angles.sort_by(f64::total_cmp);
        let mut max_gap: f64 = 0.0;
        for i in 0..angles.len() {
            let next = if i + 1 < angles.len() {
                angles[i + 1]
            } else {
                angles[0] + std::f64::consts::TAU
            };
            max_gap = max_gap.max(next - angles[i]);
        }
        max_gap > self.gap_threshold
    }
}

/// Hull detector: a node is a boundary node when it is a vertex of the
/// convex hull of its `radius`-neighborhood (itself included).
///
/// Cruder than the angle-gap detector on concave boundaries but immune to
/// angular-noise false positives.
#[derive(Debug, Clone, Copy)]
pub struct HullDetector {
    /// Neighborhood radius used to collect witnesses.
    pub radius: f64,
}

impl BoundaryDetector for HullDetector {
    fn is_boundary(&self, net: &Network, id: NodeId) -> bool {
        let origin = net.position(id);
        let mut pts: Vec<Point> = net
            .nodes_within(origin, self.radius)
            .into_iter()
            .map(|n| net.position(n))
            .collect();
        if pts.len() <= 3 {
            return true;
        }
        pts.push(origin);
        let hull = convex_hull(&pts);
        hull.iter().any(|&h| h.approx_eq(origin, 1e-12))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 5×5 grid with spacing 0.1.
    fn grid_network() -> Network {
        Network::from_positions(
            0.15,
            (0..5).flat_map(|i| (0..5).map(move |j| Point::new(i as f64 * 0.1, j as f64 * 0.1))),
        )
    }

    #[test]
    fn angle_gap_flags_corners_and_edges_not_center() {
        let net = grid_network();
        let det = AngleGapDetector::new(0.15);
        // Corner (0,0) = index 0, edge (0, 0.2) = index 2, center (0.2,0.2) = 12.
        assert!(det.is_boundary(&net, NodeId(0)), "corner");
        assert!(det.is_boundary(&net, NodeId(2)), "edge");
        assert!(!det.is_boundary(&net, NodeId(12)), "center");
    }

    #[test]
    fn hull_detector_flags_hull_nodes() {
        let net = grid_network();
        let det = HullDetector { radius: 0.15 };
        assert!(det.is_boundary(&net, NodeId(0)), "corner");
        assert!(!det.is_boundary(&net, NodeId(12)), "center");
    }

    #[test]
    fn isolated_node_is_boundary() {
        let net = Network::from_positions(0.1, [Point::new(0.0, 0.0)]);
        assert!(AngleGapDetector::new(0.1).is_boundary(&net, NodeId(0)));
        assert!(HullDetector { radius: 0.1 }.is_boundary(&net, NodeId(0)));
    }

    #[test]
    fn colocated_neighbors_do_not_confuse_angle_gap() {
        // Node with three co-located neighbors: directions undefined for
        // them; the node must count as boundary (no angular coverage).
        let p = Point::new(0.5, 0.5);
        let net = Network::from_positions(0.2, [p, p, p, p]);
        let det = AngleGapDetector::new(0.2);
        assert!(det.is_boundary(&net, NodeId(0)));
    }
}
