//! One-hop adjacency snapshot in CSR form.
//!
//! A synchronous LAACAD round runs `N` multi-hop BFS searches against
//! the *same* position snapshot; each search visits every ring node and
//! asks for its one-hop neighbors. Answering those from the hash-grid
//! costs bucket lookups, distance checks and a sort per visit — building
//! the whole adjacency once per round (one grid query per node) and
//! reading slices afterwards is strictly cheaper and trivially
//! shareable across worker threads.
//!
//! Rows are exactly [`Network::one_hop_neighbors`] (ascending ids, node
//! itself excluded), so a BFS over the snapshot is bit-identical to one
//! over live grid queries.
//!
//! Partially-active rounds need not rebuild: [`Adjacency::apply_moves`]
//! patches the snapshot from the round's movement delta, re-querying
//! only the rows a mover could have touched and copying every other row
//! verbatim — bit-identical to a full [`Adjacency::rebuild`].

use crate::network::Network;
use crate::node::NodeId;
use laacad_geom::Point;

/// Compressed sparse rows of the one-hop communication graph.
#[derive(Debug, Clone, Default)]
pub struct Adjacency {
    offsets: Vec<u32>,
    neighbors: Vec<u32>,
    /// Per-node query scratch reused across rebuilds.
    row: Vec<usize>,
    /// Double-buffer spares for [`Adjacency::apply_moves`].
    spare_offsets: Vec<u32>,
    spare_neighbors: Vec<u32>,
    /// Epoch-stamped affected-row marks (no `O(N)` clear per update).
    stamp: Vec<u64>,
    epoch: u64,
}

impl Adjacency {
    /// Builds the adjacency of `net`'s current positions.
    pub fn build(net: &Network) -> Self {
        let mut adj = Adjacency::default();
        adj.rebuild(net);
        adj
    }

    /// Rebuilds in place, reusing the row storage (the round engine
    /// refreshes one instance every round).
    pub fn rebuild(&mut self, net: &Network) {
        self.offsets.clear();
        self.neighbors.clear();
        self.offsets.push(0);
        let mut row = std::mem::take(&mut self.row);
        for i in 0..net.len() {
            net.one_hop_neighbors_into(NodeId(i), &mut row);
            self.neighbors.extend(row.iter().map(|&j| j as u32));
            self.offsets.push(self.neighbors.len() as u32);
        }
        self.row = row;
    }

    /// Patches the snapshot for a batch of moves `(index, old, new)` —
    /// the move-delta update path of partially-active rounds. `net` must
    /// hold the post-move positions and the same population the snapshot
    /// was built for.
    ///
    /// A row can only change when its node moved or when a mover's old
    /// or new position lies within one hop of it, so exactly those rows
    /// are re-queried; every other row is copied verbatim from the
    /// previous snapshot. The result is bit-identical to a full
    /// [`Adjacency::rebuild`] at the same positions. Returns the number
    /// of rows re-queried.
    ///
    /// # Panics
    ///
    /// Panics (debug) when the snapshot's population differs from
    /// `net`'s — incremental updates cannot span insertions or removals.
    pub fn apply_moves(
        &mut self,
        net: &Network,
        moves: impl IntoIterator<Item = (usize, Point, Point)>,
    ) -> usize {
        let n = net.len();
        debug_assert_eq!(
            self.len(),
            n,
            "incremental adjacency update across a population change"
        );
        let gamma = net.gamma();
        self.epoch += 1;
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
        }
        let mut row = std::mem::take(&mut self.row);
        for (i, from, to) in moves {
            self.stamp[i] = self.epoch;
            // The affected-row queries use the same spatial predicate as
            // the one-hop rows themselves, so they find exactly the
            // nodes whose row could have listed the mover (old position)
            // or must list it now (new position).
            for q in [from, to] {
                net.nodes_within_into(q, gamma, &mut row);
                for &j in &row {
                    self.stamp[j] = self.epoch;
                }
            }
        }
        let mut offsets = std::mem::take(&mut self.spare_offsets);
        let mut neighbors = std::mem::take(&mut self.spare_neighbors);
        offsets.clear();
        neighbors.clear();
        offsets.push(0);
        let mut requeried = 0;
        for i in 0..n {
            if self.stamp[i] == self.epoch {
                requeried += 1;
                net.one_hop_neighbors_into(NodeId(i), &mut row);
                neighbors.extend(row.iter().map(|&j| j as u32));
            } else {
                neighbors.extend_from_slice(
                    &self.neighbors[self.offsets[i] as usize..self.offsets[i + 1] as usize],
                );
            }
            offsets.push(neighbors.len() as u32);
        }
        self.spare_offsets = std::mem::replace(&mut self.offsets, offsets);
        self.spare_neighbors = std::mem::replace(&mut self.neighbors, neighbors);
        self.row = row;
        requeried
    }

    /// Number of nodes the snapshot covers.
    pub fn len(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Whether the snapshot covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// One-hop neighbors of node `i`, ascending, `i` excluded.
    #[inline]
    pub fn neighbors(&self, i: usize) -> &[u32] {
        &self.neighbors[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// The raw CSR arrays `(offsets, neighbors)` — snapshot serialization.
    /// Empty offsets means an empty (never-built) snapshot.
    pub fn csr(&self) -> (&[u32], &[u32]) {
        (&self.offsets, &self.neighbors)
    }

    /// Reconstructs a snapshot from serialized CSR arrays. The rebuild
    /// scratch, double-buffer spares, and epoch stamps are transient
    /// (resized on demand, never read before being written), so only the
    /// CSR itself round-trips.
    ///
    /// # Panics
    ///
    /// Panics when the CSR is malformed (offsets not starting at 0, not
    /// monotone, or not ending at `neighbors.len()`), unless both vectors
    /// are empty (the never-built state).
    pub fn from_csr(offsets: Vec<u32>, neighbors: Vec<u32>) -> Self {
        if !offsets.is_empty() {
            assert_eq!(offsets[0], 0, "CSR offsets must start at 0");
            assert!(
                offsets.windows(2).all(|w| w[0] <= w[1]),
                "CSR offsets must be monotone"
            );
            assert_eq!(
                *offsets.last().unwrap() as usize,
                neighbors.len(),
                "CSR offsets must end at neighbors.len()"
            );
        } else {
            assert!(neighbors.is_empty(), "neighbors without offsets");
        }
        Adjacency {
            offsets,
            neighbors,
            ..Adjacency::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laacad_geom::Point;

    #[test]
    fn rows_match_live_queries() {
        let net = Network::from_positions(
            0.25,
            (0..25).map(|i| Point::new((i % 5) as f64 * 0.2, (i / 5) as f64 * 0.2)),
        );
        let adj = Adjacency::build(&net);
        assert_eq!(adj.len(), 25);
        for i in 0..net.len() {
            let live: Vec<u32> = net
                .one_hop_neighbors(NodeId(i))
                .into_iter()
                .map(|n| n.index() as u32)
                .collect();
            assert_eq!(adj.neighbors(i), live.as_slice(), "node {i}");
        }
    }

    #[test]
    fn rebuild_reflects_movement() {
        let mut net = Network::from_positions(0.15, [Point::new(0.0, 0.0), Point::new(1.0, 1.0)]);
        let mut adj = Adjacency::build(&net);
        assert!(adj.neighbors(0).is_empty());
        net.move_node(NodeId(1), Point::new(0.1, 0.0));
        adj.rebuild(&net);
        assert_eq!(adj.neighbors(0), &[1]);
        assert_eq!(adj.neighbors(1), &[0]);
    }

    #[test]
    fn empty_network() {
        let adj = Adjacency::build(&Network::new(0.1));
        assert!(adj.is_empty());
    }

    #[test]
    fn apply_moves_matches_full_rebuild() {
        // A 7×7 grid; move a few nodes (short nudges and a long jump),
        // patch incrementally, and compare every row with a from-scratch
        // rebuild at the same positions.
        let mut net = Network::from_positions(
            0.22,
            (0..49).map(|i| Point::new((i % 7) as f64 * 0.15, (i / 7) as f64 * 0.15)),
        );
        let mut adj = Adjacency::build(&net);
        let moves = [
            (8usize, Point::new(0.31, 0.02)), // short nudge
            (24, Point::new(0.9, 0.9)),       // long jump across the grid
            (40, Point::new(0.001, 0.001)),   // into the corner
        ];
        let mut deltas = Vec::new();
        for &(i, target) in &moves {
            let from = net.position(NodeId(i));
            net.move_node(NodeId(i), target);
            deltas.push((i, from, target));
        }
        let requeried = adj.apply_moves(&net, deltas.iter().copied());
        assert!(requeried >= moves.len(), "movers themselves re-query");
        assert!(
            requeried < net.len(),
            "far rows must be copied, not re-queried"
        );
        let fresh = Adjacency::build(&net);
        for i in 0..net.len() {
            assert_eq!(adj.neighbors(i), fresh.neighbors(i), "row {i}");
        }
        // A second batch over the patched snapshot stays exact.
        let from = net.position(NodeId(24));
        net.move_node(NodeId(24), Point::new(0.45, 0.47));
        adj.apply_moves(&net, [(24, from, Point::new(0.45, 0.47))]);
        let fresh = Adjacency::build(&net);
        for i in 0..net.len() {
            assert_eq!(
                adj.neighbors(i),
                fresh.neighbors(i),
                "row {i} after second batch"
            );
        }
    }
}
