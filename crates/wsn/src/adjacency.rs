//! One-hop adjacency snapshot in CSR form.
//!
//! A synchronous LAACAD round runs `N` multi-hop BFS searches against
//! the *same* position snapshot; each search visits every ring node and
//! asks for its one-hop neighbors. Answering those from the hash-grid
//! costs bucket lookups, distance checks and a sort per visit — building
//! the whole adjacency once per round (one grid query per node) and
//! reading slices afterwards is strictly cheaper and trivially
//! shareable across worker threads.
//!
//! Rows are exactly [`Network::one_hop_neighbors`] (ascending ids, node
//! itself excluded), so a BFS over the snapshot is bit-identical to one
//! over live grid queries.

use crate::network::Network;
use crate::node::NodeId;

/// Compressed sparse rows of the one-hop communication graph.
#[derive(Debug, Clone, Default)]
pub struct Adjacency {
    offsets: Vec<u32>,
    neighbors: Vec<u32>,
    /// Per-node query scratch reused across rebuilds.
    row: Vec<usize>,
}

impl Adjacency {
    /// Builds the adjacency of `net`'s current positions.
    pub fn build(net: &Network) -> Self {
        let mut adj = Adjacency::default();
        adj.rebuild(net);
        adj
    }

    /// Rebuilds in place, reusing the row storage (the round engine
    /// refreshes one instance every round).
    pub fn rebuild(&mut self, net: &Network) {
        self.offsets.clear();
        self.neighbors.clear();
        self.offsets.push(0);
        let mut row = std::mem::take(&mut self.row);
        for i in 0..net.len() {
            net.one_hop_neighbors_into(NodeId(i), &mut row);
            self.neighbors.extend(row.iter().map(|&j| j as u32));
            self.offsets.push(self.neighbors.len() as u32);
        }
        self.row = row;
    }

    /// Number of nodes the snapshot covers.
    pub fn len(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Whether the snapshot covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// One-hop neighbors of node `i`, ascending, `i` excluded.
    #[inline]
    pub fn neighbors(&self, i: usize) -> &[u32] {
        &self.neighbors[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laacad_geom::Point;

    #[test]
    fn rows_match_live_queries() {
        let net = Network::from_positions(
            0.25,
            (0..25).map(|i| Point::new((i % 5) as f64 * 0.2, (i / 5) as f64 * 0.2)),
        );
        let adj = Adjacency::build(&net);
        assert_eq!(adj.len(), 25);
        for i in 0..net.len() {
            let live: Vec<u32> = net
                .one_hop_neighbors(NodeId(i))
                .into_iter()
                .map(|n| n.index() as u32)
                .collect();
            assert_eq!(adj.neighbors(i), live.as_slice(), "node {i}");
        }
    }

    #[test]
    fn rebuild_reflects_movement() {
        let mut net = Network::from_positions(0.15, [Point::new(0.0, 0.0), Point::new(1.0, 1.0)]);
        let mut adj = Adjacency::build(&net);
        assert!(adj.neighbors(0).is_empty());
        net.move_node(NodeId(1), Point::new(0.1, 0.0));
        adj.rebuild(&net);
        assert_eq!(adj.neighbors(0), &[1]);
        assert_eq!(adj.neighbors(1), &[0]);
    }

    #[test]
    fn empty_network() {
        let adj = Adjacency::build(&Network::new(0.1));
        assert!(adj.is_empty());
    }
}
