//! Flat dense spatial grid — the million-node layout of the index.
//!
//! [`crate::spatial::SpatialGrid`] hashes every cell probe and scatters
//! its buckets across the heap; at N = 10⁵–10⁶ the per-query hashing and
//! pointer chasing dominate the radius queries every round performs.
//! [`FlatGrid`] stores the same index as one row-major cell array over
//! the point cloud's bounding box: CSR-style `starts`/`entries` arrays
//! built by a counting sort, a per-cell occupancy prefix so point
//! relocation is an O(1) swap-remove + append, and per-point back
//! pointers (`cell_of`/`slot_of`) so `apply_moves` touches only the
//! movers' source and destination cells. A radius query walks contiguous
//! row runs of the cell array — no hashing, no per-bucket allocation.
//!
//! Both index layouts implement the identical query contracts
//! ([`FlatGrid::within_into`] sorts its output; the
//! [`FlatGrid::min_distance_within`] early-exit contract matches
//! [`crate::spatial::SpatialGrid::min_distance_within`] exactly), so
//! swapping one for the other is invisible to callers — results are
//! bit-identical, which is what lets [`GridIndex`] pick the layout per
//! deployment without perturbing any round.
//!
//! The flat layout only pays off while the bounding box is dense in
//! points: a handful of far-flung outliers would inflate the cell array
//! without bound. [`FlatGrid::try_build`] therefore refuses (returns
//! `None`) when the box would need more than a small multiple of N
//! cells, and [`GridIndex::build`] falls back to the hash grid — the
//! sparse/paged fallback of the flat design. Mutations that escape the
//! current box or overflow a cell's slack report failure instead of
//! degrading, and the owner (who holds the positions) rebuilds in O(N).

use crate::spatial::SpatialGrid;
use laacad_geom::Point;

/// Spare slots reserved per cell at build time, so points can migrate
/// into a cell a few times before the grid asks for a rebuild.
const CELL_SLACK: u32 = 4;

/// A build is refused when the bounding box needs more than
/// `DENSITY_LIMIT · N + DENSITY_SLACK` cells — the point cloud is too
/// sparse for a dense array to pay off.
const DENSITY_LIMIT: u128 = 2;
const DENSITY_SLACK: u128 = 64;

/// A dense row-major grid over points with a fixed cell size.
///
/// Indexes points by their position in an external slice, exactly like
/// [`SpatialGrid`]; the cell decomposition (`floor(p / cell)` per axis)
/// is also identical, so the two layouts index the same point into the
/// same cell.
#[derive(Debug, Clone)]
pub struct FlatGrid {
    cell: f64,
    /// Grid coordinates of the lower-left cell.
    gx0: i64,
    gy0: i64,
    cols: usize,
    rows: usize,
    /// Block boundaries per cell (`ncells + 1` entries): cell `c` owns
    /// `entries[starts[c] .. starts[c + 1]]`, of which the first
    /// `lens[c]` slots are occupied.
    starts: Vec<u32>,
    lens: Vec<u32>,
    entries: Vec<u32>,
    /// Back pointers per point: linear cell index and absolute slot in
    /// `entries` — what makes removal O(1).
    cell_of: Vec<u32>,
    slot_of: Vec<u32>,
}

impl FlatGrid {
    /// Builds a dense grid with the given cell size over `points`
    /// (indexed by position in the slice), or `None` when the point
    /// cloud's bounding box is too sparse for a dense cell array (or the
    /// index would overflow `u32`).
    ///
    /// # Panics
    ///
    /// Panics when `cell` is not strictly positive.
    pub fn try_build(points: &[Point], cell: f64) -> Option<Self> {
        assert!(cell.is_finite() && cell > 0.0, "cell size must be positive");
        let n = points.len();
        if n == 0 {
            return Some(FlatGrid {
                cell,
                gx0: 0,
                gy0: 0,
                cols: 0,
                rows: 0,
                starts: vec![0],
                lens: Vec::new(),
                entries: Vec::new(),
                cell_of: Vec::new(),
                slot_of: Vec::new(),
            });
        }
        // Entry count is at most `n + CELL_SLACK · ncells ≤ 9n + 256`;
        // keep it comfortably inside `u32`.
        if n > u32::MAX as usize / 16 {
            return None;
        }
        let (mut gx0, mut gy0) = (i64::MAX, i64::MAX);
        let (mut gx1, mut gy1) = (i64::MIN, i64::MIN);
        for &p in points {
            let (gx, gy) = key(p, cell);
            gx0 = gx0.min(gx);
            gy0 = gy0.min(gy);
            gx1 = gx1.max(gx);
            gy1 = gy1.max(gy);
        }
        // Span arithmetic in wide integers: a degenerate cell size next
        // to spread-out points could overflow i64 spans.
        let cols = (gx1 as i128 - gx0 as i128 + 1) as u128;
        let rows = (gy1 as i128 - gy0 as i128 + 1) as u128;
        let ncells = cols.checked_mul(rows)?;
        if ncells > DENSITY_LIMIT * n as u128 + DENSITY_SLACK {
            return None;
        }
        let (cols, rows) = (cols as usize, rows as usize);
        let ncells = ncells as usize;
        let mut grid = FlatGrid {
            cell,
            gx0,
            gy0,
            cols,
            rows,
            starts: vec![0u32; ncells + 1],
            lens: vec![0u32; ncells],
            entries: Vec::new(),
            cell_of: vec![0u32; n],
            slot_of: vec![0u32; n],
        };
        // Counting sort: count per cell, prefix-sum block starts (each
        // block gets `CELL_SLACK` spare slots), then place the points.
        for &p in points {
            let c = grid.cell_index(key(p, cell)).expect("point inside bbox");
            grid.starts[c + 1] += 1;
        }
        let mut total = 0u32;
        for c in 0..ncells {
            let count = grid.starts[c + 1];
            grid.starts[c] = total;
            total += count + CELL_SLACK;
        }
        grid.starts[ncells] = total;
        grid.entries = vec![0u32; total as usize];
        for (i, &p) in points.iter().enumerate() {
            let c = grid.cell_index(key(p, cell)).expect("point inside bbox");
            let slot = grid.starts[c] + grid.lens[c];
            grid.entries[slot as usize] = i as u32;
            grid.cell_of[i] = c as u32;
            grid.slot_of[i] = slot;
            grid.lens[c] += 1;
        }
        Some(grid)
    }

    /// Linear cell index of a grid key, or `None` when the key falls
    /// outside the built bounding box.
    #[inline]
    fn cell_index(&self, (gx, gy): (i64, i64)) -> Option<usize> {
        if gx < self.gx0 || gy < self.gy0 {
            return None;
        }
        let (cx, cy) = ((gx - self.gx0) as usize, (gy - self.gy0) as usize);
        if cx >= self.cols || cy >= self.rows {
            return None;
        }
        Some(cy * self.cols + cx)
    }

    /// Like [`SpatialGrid::within_into`]: indices of all points within
    /// Euclidean distance `radius` of `q` (inclusive), ascending,
    /// appended into a caller-owned buffer (cleared first).
    pub fn within_into(&self, points: &[Point], q: Point, radius: f64, out: &mut Vec<usize>) {
        out.clear();
        let r = radius.max(0.0);
        let r_sq = r * r + 1e-12;
        let (lo, hi) = self.clamped_range(q, r);
        let Some(((cx0, cx1), (cy0, cy1))) = range_cells(lo, hi) else {
            return;
        };
        for cy in cy0..=cy1 {
            let row = cy * self.cols;
            for c in (row + cx0)..=(row + cx1) {
                let start = self.starts[c] as usize;
                for &e in &self.entries[start..start + self.lens[c] as usize] {
                    let i = e as usize;
                    if points[i].distance_sq(q) <= r_sq {
                        out.push(i);
                    }
                }
            }
        }
        out.sort_unstable();
    }

    /// **Test-only convenience** mirroring [`SpatialGrid::within`]:
    /// allocates a fresh `Vec` per call, so no hot path uses it —
    /// per-round queries go through [`FlatGrid::within_into`] with a
    /// reused buffer.
    pub fn within(&self, points: &[Point], q: Point, radius: f64) -> Vec<usize> {
        let mut out = Vec::new();
        self.within_into(points, q, radius, &mut out);
        out
    }

    /// Distance from `q` to the nearest indexed point within `radius`
    /// (`f64::INFINITY` when none), with the same early-exit contract as
    /// [`SpatialGrid::min_distance_within`]: a return value
    /// `> stop_below` is the exact minimum; a value `≤ stop_below`
    /// witnesses some point at that distance.
    pub fn min_distance_within(
        &self,
        points: &[Point],
        q: Point,
        radius: f64,
        stop_below: f64,
    ) -> f64 {
        let r = radius.max(0.0);
        let r_sq = r * r + 1e-12;
        let mut best_sq = f64::INFINITY;
        let stop_sq = stop_below * stop_below;
        let (lo, hi) = self.clamped_range(q, r);
        let Some(((cx0, cx1), (cy0, cy1))) = range_cells(lo, hi) else {
            return best_sq.sqrt();
        };
        for cy in cy0..=cy1 {
            let row = cy * self.cols;
            for c in (row + cx0)..=(row + cx1) {
                let start = self.starts[c] as usize;
                for &e in &self.entries[start..start + self.lens[c] as usize] {
                    let d_sq = points[e as usize].distance_sq(q);
                    if d_sq <= r_sq && d_sq < best_sq {
                        best_sq = d_sq;
                        if best_sq <= stop_sq {
                            return best_sq.sqrt();
                        }
                    }
                }
            }
        }
        best_sq.sqrt()
    }

    /// The query's key range intersected with the grid extent, as
    /// zero-based cell coordinates (`x0 > x1` encodes an empty range).
    #[inline]
    fn clamped_range(&self, q: Point, r: f64) -> ((i64, i64), (i64, i64)) {
        let lo = key(q - laacad_geom::Vector::new(r, r), self.cell);
        let hi = key(q + laacad_geom::Vector::new(r, r), self.cell);
        let x0 = (lo.0.max(self.gx0) - self.gx0).max(0);
        let y0 = (lo.1.max(self.gy0) - self.gy0).max(0);
        let x1 = (hi.0 - self.gx0).min(self.cols as i64 - 1);
        let y1 = (hi.1 - self.gy0).min(self.rows as i64 - 1);
        ((x0, x1), (y0, y1))
    }

    /// Adds point `i` located at `p`. Returns `false` — leaving the
    /// index unusable until rebuilt — when `p` falls outside the built
    /// bounding box or its cell's slack is exhausted.
    #[must_use]
    pub fn insert(&mut self, i: usize, p: Point) -> bool {
        let Some(c) = self.cell_index(key(p, self.cell)) else {
            return false;
        };
        if self.cell_of.len() <= i {
            self.cell_of.resize(i + 1, 0);
            self.slot_of.resize(i + 1, 0);
        }
        self.place(i, c)
    }

    /// Appends `i` into cell `c`'s block, failing when the block is full.
    #[inline]
    fn place(&mut self, i: usize, c: usize) -> bool {
        let slot = self.starts[c] + self.lens[c];
        if slot == self.starts[c + 1] {
            return false;
        }
        self.entries[slot as usize] = i as u32;
        self.cell_of[i] = c as u32;
        self.slot_of[i] = slot;
        self.lens[c] += 1;
        true
    }

    /// Moves point `i` from `old` to `new`. Returns `false` — leaving
    /// the index unusable until rebuilt — when the destination escapes
    /// the bounding box or overflows its cell.
    #[must_use]
    pub fn relocate(&mut self, i: usize, old: Point, new: Point) -> bool {
        let ko = key(old, self.cell);
        let kn = key(new, self.cell);
        if ko == kn {
            return true;
        }
        let Some(dest) = self.cell_index(kn) else {
            return false;
        };
        // O(1) swap-remove from the source cell's occupied prefix. The
        // in-cell order this perturbs is never observable: every query
        // either sorts its output or returns a distance.
        let c = self.cell_of[i] as usize;
        let s = self.slot_of[i];
        self.lens[c] -= 1;
        let last = self.starts[c] + self.lens[c];
        let moved = self.entries[last as usize];
        self.entries[s as usize] = moved;
        self.slot_of[moved as usize] = s;
        self.place(i, dest)
    }

    /// Applies a batch of moves `(index, old, new)`. The iterator is
    /// always drained in full (callers thread position updates through
    /// it as side effects); on the first failed relocation the index
    /// stops updating and `false` is returned — the caller must rebuild.
    #[must_use]
    pub fn apply_moves(&mut self, moves: impl IntoIterator<Item = (usize, Point, Point)>) -> bool {
        let mut ok = true;
        for (i, old, new) in moves {
            if ok {
                ok = self.relocate(i, old, new);
            }
        }
        ok
    }

    /// The configured cell size.
    pub fn cell_size(&self) -> f64 {
        self.cell
    }
}

/// Grid key of a point — must stay identical to
/// [`SpatialGrid`]'s cell decomposition.
#[inline]
fn key(p: Point, cell: f64) -> (i64, i64) {
    ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64)
}

/// Converts a clamped key range into inclusive `usize` cell coordinate
/// ranges, or `None` when the query box misses the grid entirely.
#[inline]
#[allow(clippy::type_complexity)]
fn range_cells(
    (x0, x1): (i64, i64),
    (y0, y1): (i64, i64),
) -> Option<((usize, usize), (usize, usize))> {
    if x0 > x1 || y0 > y1 {
        return None;
    }
    Some(((x0 as usize, x1 as usize), (y0 as usize, y1 as usize)))
}

/// The spatial index behind [`crate::Network`]: one of the two
/// bit-identical layouts.
///
/// [`GridIndex::build`] prefers the flat layout when asked and the point
/// cloud is dense enough, falling back to the hash grid otherwise. The
/// fallible mutations ([`GridIndex::insert`] /
/// [`GridIndex::apply_moves`] / [`GridIndex::relocate`]) report `false`
/// when the flat layout needs a rebuild; the hash layout never does.
#[derive(Debug, Clone)]
pub enum GridIndex {
    /// Hash-bucket layout ([`SpatialGrid`]) — handles any point cloud.
    Hash(SpatialGrid),
    /// Dense row-major layout ([`FlatGrid`]) — the large-N fast path.
    Flat(FlatGrid),
}

impl GridIndex {
    /// Builds an index over `points`, choosing the flat layout when
    /// `prefer_flat` and the bounding box is dense enough.
    pub fn build(points: &[Point], cell: f64, prefer_flat: bool) -> Self {
        if prefer_flat {
            if let Some(flat) = FlatGrid::try_build(points, cell) {
                return GridIndex::Flat(flat);
            }
        }
        GridIndex::Hash(SpatialGrid::build(points, cell))
    }

    /// Whether the flat layout is active.
    pub fn is_flat(&self) -> bool {
        matches!(self, GridIndex::Flat(_))
    }

    /// See [`SpatialGrid::within_into`].
    pub fn within_into(&self, points: &[Point], q: Point, radius: f64, out: &mut Vec<usize>) {
        match self {
            GridIndex::Hash(g) => g.within_into(points, q, radius, out),
            GridIndex::Flat(g) => g.within_into(points, q, radius, out),
        }
    }

    /// See [`SpatialGrid::min_distance_within`].
    pub fn min_distance_within(
        &self,
        points: &[Point],
        q: Point,
        radius: f64,
        stop_below: f64,
    ) -> f64 {
        match self {
            GridIndex::Hash(g) => g.min_distance_within(points, q, radius, stop_below),
            GridIndex::Flat(g) => g.min_distance_within(points, q, radius, stop_below),
        }
    }

    /// Adds point `i` at `p`; `false` means the index must be rebuilt.
    #[must_use]
    pub fn insert(&mut self, i: usize, p: Point) -> bool {
        match self {
            GridIndex::Hash(g) => {
                g.insert(i, p);
                true
            }
            GridIndex::Flat(g) => g.insert(i, p),
        }
    }

    /// Moves point `i`; `false` means the index must be rebuilt.
    #[must_use]
    pub fn relocate(&mut self, i: usize, old: Point, new: Point) -> bool {
        match self {
            GridIndex::Hash(g) => {
                g.relocate(i, old, new);
                true
            }
            GridIndex::Flat(g) => g.relocate(i, old, new),
        }
    }

    /// Applies a move batch, always draining the iterator (side effects
    /// included); `false` means the index must be rebuilt.
    #[must_use]
    pub fn apply_moves(&mut self, moves: impl IntoIterator<Item = (usize, Point, Point)>) -> bool {
        match self {
            GridIndex::Hash(g) => {
                g.apply_moves(moves);
                true
            }
            GridIndex::Flat(g) => g.apply_moves(moves),
        }
    }

    /// The configured cell size.
    pub fn cell_size(&self) -> f64 {
        match self {
            GridIndex::Hash(g) => g.cell_size(),
            GridIndex::Flat(g) => g.cell_size(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud() -> Vec<Point> {
        let mut pts = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                pts.push(Point::new(i as f64 * 0.1, j as f64 * 0.1));
            }
        }
        pts
    }

    fn within(grid: &FlatGrid, pts: &[Point], q: Point, r: f64) -> Vec<usize> {
        let mut out = Vec::new();
        grid.within_into(pts, q, r, &mut out);
        out
    }

    #[test]
    fn within_matches_hash_grid() {
        let pts = cloud();
        let flat = FlatGrid::try_build(&pts, 0.25).expect("dense cloud");
        let hash = SpatialGrid::build(&pts, 0.25);
        for &(qx, qy, r) in &[
            (0.5, 0.5, 0.2),
            (0.0, 0.0, 0.15),
            (0.95, 0.5, 0.3),
            (0.5, 0.5, 5.0),
            (-2.0, -2.0, 0.5),
            (2.0, 2.0, 3.0),
        ] {
            let q = Point::new(qx, qy);
            assert_eq!(
                within(&flat, &pts, q, r),
                hash.within(&pts, q, r),
                "query ({qx},{qy}) r={r}"
            );
        }
    }

    #[test]
    fn zero_radius_returns_coincident_points() {
        let pts = vec![
            Point::new(1.0, 1.0),
            Point::new(2.0, 2.0),
            Point::new(1.0, 1.0),
        ];
        let grid = FlatGrid::try_build(&pts, 0.5).expect("dense");
        assert_eq!(within(&grid, &pts, Point::new(1.0, 1.0), 0.0), vec![0, 2]);
    }

    #[test]
    fn relocate_keeps_queries_correct() {
        let mut pts = cloud();
        let mut grid = FlatGrid::try_build(&pts, 0.25).expect("dense cloud");
        // In-box move.
        let old = pts[7];
        pts[7] = Point::new(0.51, 0.52);
        assert!(grid.relocate(7, old, pts[7]));
        assert!(within(&grid, &pts, Point::new(0.5, 0.5), 0.05).contains(&7));
        assert!(!within(&grid, &pts, old, 0.05).contains(&7));
        // Same-cell move: no structural change needed.
        let old = pts[50];
        let new = Point::new(old.x + 1e-6, old.y);
        pts[50] = new;
        assert!(grid.relocate(50, old, new));
        assert!(within(&grid, &pts, new, 0.01).contains(&50));
        // Out-of-box move reports a needed rebuild.
        let old = pts[3];
        assert!(!grid.relocate(3, old, Point::new(9.0, 9.0)));
    }

    #[test]
    fn insert_extends_queries_and_reports_overflow() {
        let mut pts = cloud();
        let mut grid = FlatGrid::try_build(&pts, 0.25).expect("dense cloud");
        pts.push(Point::new(0.55, 0.55));
        assert!(grid.insert(pts.len() - 1, pts[pts.len() - 1]));
        assert!(within(&grid, &pts, Point::new(0.55, 0.55), 0.01).contains(&(pts.len() - 1)));
        // Outside the bounding box: rebuild required.
        assert!(!grid.insert(pts.len(), Point::new(5.0, 5.0)));
        // A cell accepts at most `CELL_SLACK` net arrivals before
        // demanding a rebuild.
        let mut grid = FlatGrid::try_build(&pts, 0.25).expect("dense cloud");
        let mut accepted = 0;
        for extra in 0..=CELL_SLACK as usize {
            if grid.insert(pts.len() + extra, Point::new(0.3, 0.3)) {
                accepted += 1;
            }
        }
        assert_eq!(accepted, CELL_SLACK);
    }

    #[test]
    fn min_distance_matches_hash_grid() {
        let pts = cloud();
        let flat = FlatGrid::try_build(&pts, 0.25).expect("dense cloud");
        let hash = SpatialGrid::build(&pts, 0.25);
        for &(qx, qy, r) in &[(0.52, 0.47, 0.2), (1.4, 1.4, 0.3), (1.45, 0.5, 0.6)] {
            let q = Point::new(qx, qy);
            let got = flat.min_distance_within(&pts, q, r, 0.0);
            let expect = hash.min_distance_within(&pts, q, r, 0.0);
            if expect.is_infinite() {
                assert!(got.is_infinite(), "({qx},{qy}) r={r}: got {got}");
            } else {
                assert!((got - expect).abs() < 1e-15, "({qx},{qy}) r={r}");
            }
        }
        let witnessed = flat.min_distance_within(&pts, Point::new(0.5, 0.5), 0.5, 0.2);
        assert!(witnessed <= 0.2);
    }

    #[test]
    fn sparse_cloud_refuses_flat_build() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(1000.0, 1000.0)];
        assert!(FlatGrid::try_build(&pts, 0.1).is_none());
        // And the unified index falls back to the hash layout.
        let index = GridIndex::build(&pts, 0.1, true);
        assert!(!index.is_flat());
        let mut out = Vec::new();
        index.within_into(&pts, Point::new(0.0, 0.0), 1.0, &mut out);
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn negative_coordinates_work() {
        let pts = vec![Point::new(-1.0, -1.0), Point::new(-0.9, -1.0)];
        let grid = FlatGrid::try_build(&pts, 0.3).expect("dense");
        assert_eq!(
            within(&grid, &pts, Point::new(-1.0, -1.0), 0.15),
            vec![0, 1]
        );
    }

    #[test]
    fn empty_grid_answers_and_grows_via_rebuild_path() {
        let grid = FlatGrid::try_build(&[], 0.5).expect("empty is dense");
        let mut out = vec![1usize];
        grid.within_into(&[], Point::ORIGIN, 10.0, &mut out);
        assert!(out.is_empty());
        let mut grid = grid;
        assert!(!grid.insert(0, Point::ORIGIN), "empty box has no cells");
    }

    #[test]
    #[should_panic(expected = "cell size")]
    fn zero_cell_size_panics() {
        let _ = FlatGrid::try_build(&[], 0.0);
    }
}
