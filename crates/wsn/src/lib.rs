//! # laacad-wsn — the wireless-sensor-network substrate
//!
//! Everything LAACAD assumes of its platform (paper Sec. III-A), built as
//! a simulation substrate:
//!
//! * [`node::SensorNode`] / [`Network`] — mobile nodes with tunable
//!   sensing ranges and an identical transmission range `γ`, stored
//!   struct-of-arrays and indexed by a uniform grid ([`flat::GridIndex`]:
//!   the dense [`flat::FlatGrid`] or the hash
//!   [`spatial::SpatialGrid`]) for O(1)-ish range queries;
//! * [`radio`] — the unit-disk communication graph, hop distances,
//!   connected components, and message accounting;
//! * [`multihop`] — the `N(n_i, ρ)` neighborhoods of Algorithm 2 (nodes
//!   within Euclidean radius `ρ`, reached within `⌈ρ/γ⌉` hops);
//! * [`ranging`] + [`mds`] + [`localize`] — noisy pairwise ranging and the
//!   classical-MDS local coordinate construction of Algorithm 2 line 4
//!   (paper ref \[28\], Shang & Ruml), mapped back with Procrustes;
//! * [`boundary`] — boundary-node detection (substitute for the paper's
//!   UNFOLD service, ref \[29\]): angle-gap and local-hull detectors;
//! * [`energy`] — the sensing-energy model `E(r) = π r²` (generalizable
//!   exponent) behind Fig. 7;
//! * [`mobility`] — motion execution with step-size `α` and odometry.
//!
//! # Example
//!
//! ```
//! use laacad_geom::Point;
//! use laacad_wsn::{Network, NodeId};
//!
//! let mut net = Network::new(0.15); // transmission range γ = 150 m
//! let a = net.add_node(Point::new(0.0, 0.0));
//! let b = net.add_node(Point::new(0.1, 0.0));
//! let c = net.add_node(Point::new(0.9, 0.9));
//! assert!(net.one_hop_neighbors(a).contains(&b));
//! assert!(!net.one_hop_neighbors(a).contains(&c));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adjacency;
pub mod boundary;
pub mod energy;
pub mod flat;
pub mod localize;
pub mod mds;
pub mod mobility;
pub mod multihop;
pub mod network;
pub mod node;
pub mod radio;
pub mod ranging;
pub mod spatial;

pub use adjacency::Adjacency;
pub use flat::{FlatGrid, GridIndex};
pub use network::Network;
pub use node::{NodeId, SensorNode};
