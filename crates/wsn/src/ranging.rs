//! Noisy pairwise ranging.
//!
//! The paper relies "on the ranging ability of each node to construct a
//! local coordinate system" (Sec. III-A). We model a range measurement as
//! `d̂ = d·(1 + ε_rel) + ε_abs` with independent zero-mean Gaussian errors,
//! symmetric per pair (both endpoints see the same measurement, as after
//! a two-way exchange).

use laacad_geom::Point;
use laacad_region::sampling::SplitMix64;

/// Gaussian ranging-noise model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangingNoise {
    /// Relative (multiplicative) standard deviation.
    pub rel_sigma: f64,
    /// Absolute (additive) standard deviation, in coordinate units.
    pub abs_sigma: f64,
}

impl RangingNoise {
    /// Noise-free ranging (the default for the paper-replication runs).
    pub const NONE: RangingNoise = RangingNoise {
        rel_sigma: 0.0,
        abs_sigma: 0.0,
    };

    /// Creates a noise model.
    ///
    /// # Panics
    ///
    /// Panics on negative sigmas.
    pub fn new(rel_sigma: f64, abs_sigma: f64) -> Self {
        assert!(
            rel_sigma >= 0.0 && abs_sigma >= 0.0,
            "noise sigmas must be non-negative"
        );
        RangingNoise {
            rel_sigma,
            abs_sigma,
        }
    }

    /// Returns `true` when both sigmas are zero.
    pub fn is_none(&self) -> bool {
        self.rel_sigma == 0.0 && self.abs_sigma == 0.0
    }
}

impl Default for RangingNoise {
    fn default() -> Self {
        RangingNoise::NONE
    }
}

/// One standard-normal draw (Box–Muller over SplitMix64).
pub fn gaussian(rng: &mut SplitMix64) -> f64 {
    let u1 = rng.next_f64().max(1e-12);
    let u2 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Symmetric measured-distance matrix for `points` under `noise`.
///
/// Entry `(i, j)` is the measured range between points `i` and `j`;
/// diagonal entries are zero. Measurements are clamped to be non-negative.
///
/// # Example
///
/// ```
/// use laacad_geom::Point;
/// use laacad_wsn::ranging::{measure_all, RangingNoise};
/// let pts = [Point::new(0.0, 0.0), Point::new(3.0, 4.0)];
/// let d = measure_all(&pts, &RangingNoise::NONE, 1);
/// assert!((d[0][1] - 5.0).abs() < 1e-12);
/// assert_eq!(d[0][1], d[1][0]);
/// ```
pub fn measure_all(points: &[Point], noise: &RangingNoise, seed: u64) -> Vec<Vec<f64>> {
    let n = points.len();
    let mut rng = SplitMix64::new(seed);
    let mut d = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in i + 1..n {
            let true_d = points[i].distance(points[j]);
            let measured = if noise.is_none() {
                true_d
            } else {
                let rel = gaussian(&mut rng) * noise.rel_sigma;
                let abs = gaussian(&mut rng) * noise.abs_sigma;
                (true_d * (1.0 + rel) + abs).max(0.0)
            };
            d[i][j] = measured;
            d[j][i] = measured;
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noiseless_matrix_is_exact_and_symmetric() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 2.0),
        ];
        let d = measure_all(&pts, &RangingNoise::NONE, 42);
        for i in 0..3 {
            assert_eq!(d[i][i], 0.0);
            for j in 0..3 {
                assert_eq!(d[i][j], d[j][i]);
                assert!((d[i][j] - pts[i].distance(pts[j])).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn noise_perturbs_but_stays_nonnegative() {
        let pts: Vec<Point> = (0..10).map(|i| Point::new(i as f64, 0.0)).collect();
        let noise = RangingNoise::new(0.05, 0.01);
        let d = measure_all(&pts, &noise, 7);
        let mut any_different = false;
        for i in 0..10 {
            for j in 0..10 {
                assert!(d[i][j] >= 0.0);
                if i != j && (d[i][j] - pts[i].distance(pts[j])).abs() > 1e-9 {
                    any_different = true;
                }
            }
        }
        assert!(any_different, "noise must actually perturb");
    }

    #[test]
    fn gaussian_moments_are_sane() {
        let mut rng = SplitMix64::new(3);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_sigma_panics() {
        let _ = RangingNoise::new(-0.1, 0.0);
    }
}
