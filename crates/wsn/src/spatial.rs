//! Uniform-grid spatial index for range queries.
//!
//! Every LAACAD round issues `N` radius queries (one expanding-ring search
//! per node); a uniform grid keeps them near-linear. Cell size is chosen
//! by the caller — the transmission range `γ` is the natural pick.

use laacad_geom::Point;
use std::collections::HashMap;

/// A hash-grid over points with a fixed cell size.
#[derive(Debug, Clone)]
pub struct SpatialGrid {
    cell: f64,
    buckets: HashMap<(i64, i64), Vec<usize>>,
}

impl SpatialGrid {
    /// Builds a grid with the given cell size over `points` (indexed by
    /// position in the slice).
    ///
    /// # Panics
    ///
    /// Panics when `cell` is not strictly positive.
    pub fn build(points: &[Point], cell: f64) -> Self {
        assert!(cell.is_finite() && cell > 0.0, "cell size must be positive");
        let mut buckets: HashMap<(i64, i64), Vec<usize>> = HashMap::new();
        for (i, &p) in points.iter().enumerate() {
            buckets.entry(Self::key(p, cell)).or_default().push(i);
        }
        SpatialGrid { cell, buckets }
    }

    fn key(p: Point, cell: f64) -> (i64, i64) {
        ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64)
    }

    /// Indices of all points within Euclidean distance `radius` of `q`
    /// (inclusive), in ascending index order.
    ///
    /// **Test-only convenience**: allocates a fresh `Vec` per call, so
    /// no hot path uses it — per-round queries go through
    /// [`SpatialGrid::within_into`] with a reused buffer.
    pub fn within(&self, points: &[Point], q: Point, radius: f64) -> Vec<usize> {
        let mut out = Vec::new();
        self.within_into(points, q, radius, &mut out);
        out
    }

    /// Like [`SpatialGrid::within`], but appends into a caller-owned
    /// buffer (cleared first) instead of allocating — the form every
    /// per-round hot query uses.
    pub fn within_into(&self, points: &[Point], q: Point, radius: f64, out: &mut Vec<usize>) {
        out.clear();
        let r = radius.max(0.0);
        let lo = Self::key(q - laacad_geom::Vector::new(r, r), self.cell);
        let hi = Self::key(q + laacad_geom::Vector::new(r, r), self.cell);
        let r_sq = r * r + 1e-12;
        for gx in lo.0..=hi.0 {
            for gy in lo.1..=hi.1 {
                if let Some(bucket) = self.buckets.get(&(gx, gy)) {
                    for &i in bucket {
                        if points[i].distance_sq(q) <= r_sq {
                            out.push(i);
                        }
                    }
                }
            }
        }
        out.sort_unstable();
    }

    /// Adds point `i` located at `p` to the index.
    pub fn insert(&mut self, i: usize, p: Point) {
        self.buckets
            .entry(Self::key(p, self.cell))
            .or_default()
            .push(i);
    }

    /// Distance from `q` to the nearest indexed point within `radius`
    /// (`f64::INFINITY` when none), with an early-exit threshold: as
    /// soon as a point at distance `≤ stop_below` is seen, its distance
    /// is returned without refining further.
    ///
    /// The contract callers may rely on: a return value `> stop_below`
    /// is the *exact* minimum over every point within `radius`; a value
    /// `≤ stop_below` witnesses some point at that distance (not
    /// necessarily the closest). Unlike [`SpatialGrid::within_into`],
    /// nothing is materialized or sorted — this is the form a
    /// tight classification loop probes per node.
    pub fn min_distance_within(
        &self,
        points: &[Point],
        q: Point,
        radius: f64,
        stop_below: f64,
    ) -> f64 {
        let r = radius.max(0.0);
        let lo = Self::key(q - laacad_geom::Vector::new(r, r), self.cell);
        let hi = Self::key(q + laacad_geom::Vector::new(r, r), self.cell);
        let r_sq = r * r + 1e-12;
        let mut best_sq = f64::INFINITY;
        let stop_sq = stop_below * stop_below;
        for gx in lo.0..=hi.0 {
            for gy in lo.1..=hi.1 {
                if let Some(bucket) = self.buckets.get(&(gx, gy)) {
                    for &i in bucket {
                        let d_sq = points[i].distance_sq(q);
                        if d_sq <= r_sq && d_sq < best_sq {
                            best_sq = d_sq;
                            if best_sq <= stop_sq {
                                return best_sq.sqrt();
                            }
                        }
                    }
                }
            }
        }
        best_sq.sqrt()
    }

    /// Applies a batch of moves `(index, old, new)` to the index — the
    /// move-delta update path of partially-active rounds: only the
    /// movers' grid cells are touched, everything else stays in place.
    /// Equivalent to calling [`SpatialGrid::relocate`] per move.
    pub fn apply_moves(&mut self, moves: impl IntoIterator<Item = (usize, Point, Point)>) {
        for (i, old, new) in moves {
            self.relocate(i, old, new);
        }
    }

    /// Moves point `i` from `old` to `new` within the index.
    pub fn relocate(&mut self, i: usize, old: Point, new: Point) {
        let ko = Self::key(old, self.cell);
        let kn = Self::key(new, self.cell);
        if ko == kn {
            return;
        }
        if let Some(bucket) = self.buckets.get_mut(&ko) {
            bucket.retain(|&x| x != i);
            if bucket.is_empty() {
                self.buckets.remove(&ko);
            }
        }
        self.buckets.entry(kn).or_default().push(i);
    }

    /// The configured cell size.
    pub fn cell_size(&self) -> f64 {
        self.cell
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud() -> Vec<Point> {
        let mut pts = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                pts.push(Point::new(i as f64 * 0.1, j as f64 * 0.1));
            }
        }
        pts
    }

    #[test]
    fn within_matches_brute_force() {
        let pts = cloud();
        let grid = SpatialGrid::build(&pts, 0.25);
        for &(qx, qy, r) in &[
            (0.5, 0.5, 0.2),
            (0.0, 0.0, 0.15),
            (0.95, 0.5, 0.3),
            (0.5, 0.5, 5.0),
        ] {
            let q = Point::new(qx, qy);
            let got = grid.within(&pts, q, r);
            let expect: Vec<usize> = (0..pts.len())
                .filter(|&i| pts[i].distance(q) <= r + 1e-9)
                .collect();
            assert_eq!(got, expect, "query ({qx},{qy}) r={r}");
        }
    }

    #[test]
    fn zero_radius_returns_coincident_points() {
        let pts = vec![
            Point::new(1.0, 1.0),
            Point::new(2.0, 2.0),
            Point::new(1.0, 1.0),
        ];
        let grid = SpatialGrid::build(&pts, 0.5);
        assert_eq!(grid.within(&pts, Point::new(1.0, 1.0), 0.0), vec![0, 2]);
    }

    #[test]
    fn relocate_keeps_queries_correct() {
        let mut pts = cloud();
        let mut grid = SpatialGrid::build(&pts, 0.25);
        // Move point 0 far away.
        let old = pts[0];
        pts[0] = Point::new(5.0, 5.0);
        grid.relocate(0, old, pts[0]);
        assert!(!grid.within(&pts, Point::new(0.0, 0.0), 0.2).contains(&0));
        assert_eq!(grid.within(&pts, Point::new(5.0, 5.0), 0.1), vec![0]);
        // Move within the same cell: no structural change needed.
        let old = pts[50];
        let new = Point::new(old.x + 1e-6, old.y);
        pts[50] = new;
        grid.relocate(50, old, new);
        assert!(grid.within(&pts, new, 0.01).contains(&50));
    }

    #[test]
    fn insert_extends_queries() {
        let mut pts = cloud();
        let mut grid = SpatialGrid::build(&pts, 0.25);
        pts.push(Point::new(0.55, 0.55));
        grid.insert(pts.len() - 1, pts[pts.len() - 1]);
        assert!(grid
            .within(&pts, Point::new(0.55, 0.55), 0.01)
            .contains(&(pts.len() - 1)));
    }

    #[test]
    fn within_into_reuses_buffer() {
        let pts = cloud();
        let grid = SpatialGrid::build(&pts, 0.25);
        let mut buf = vec![999usize; 4]; // stale content must be cleared
        grid.within_into(&pts, Point::new(0.5, 0.5), 0.15, &mut buf);
        assert_eq!(buf, grid.within(&pts, Point::new(0.5, 0.5), 0.15));
    }

    #[test]
    fn apply_moves_matches_individual_relocates() {
        let mut pts = cloud();
        let mut batch = SpatialGrid::build(&pts, 0.25);
        let mut single = SpatialGrid::build(&pts, 0.25);
        let moves = [
            (3usize, pts[3], Point::new(0.91, 0.13)),
            (50, pts[50], Point::new(0.05, 0.95)),
            (99, pts[99], Point::new(0.5, 0.5)),
        ];
        for &(i, _, new) in &moves {
            pts[i] = new;
        }
        batch.apply_moves(moves.iter().copied());
        for &(i, old, new) in &moves {
            single.relocate(i, old, new);
        }
        for &(qx, qy, r) in &[(0.5, 0.5, 0.3), (0.9, 0.1, 0.2), (0.0, 1.0, 0.4)] {
            let q = Point::new(qx, qy);
            assert_eq!(
                batch.within(&pts, q, r),
                single.within(&pts, q, r),
                "query ({qx},{qy}) r={r}"
            );
        }
    }

    #[test]
    fn min_distance_within_matches_brute_force() {
        let pts = cloud();
        let grid = SpatialGrid::build(&pts, 0.25);
        for &(qx, qy, r) in &[(0.52, 0.47, 0.2), (1.4, 1.4, 0.3), (1.45, 0.5, 0.6)] {
            let q = Point::new(qx, qy);
            let got = grid.min_distance_within(&pts, q, r, 0.0);
            let expect = pts
                .iter()
                .filter(|p| p.distance(q) <= r + 1e-9)
                .map(|p| p.distance(q))
                .fold(f64::INFINITY, f64::min);
            if expect.is_infinite() {
                assert!(got.is_infinite(), "({qx},{qy}) r={r}: got {got}");
            } else {
                assert!((got - expect).abs() < 1e-12, "({qx},{qy}) r={r}");
            }
        }
        // Early exit returns a witness within the threshold.
        let witnessed = grid.min_distance_within(&pts, Point::new(0.5, 0.5), 0.5, 0.2);
        assert!(witnessed <= 0.2);
    }

    #[test]
    fn negative_coordinates_work() {
        let pts = vec![Point::new(-1.0, -1.0), Point::new(-0.9, -1.0)];
        let grid = SpatialGrid::build(&pts, 0.3);
        assert_eq!(grid.within(&pts, Point::new(-1.0, -1.0), 0.15), vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "cell size")]
    fn zero_cell_size_panics() {
        let _ = SpatialGrid::build(&[], 0.0);
    }
}
