//! Multi-hop ring neighborhoods `N(n_i, ρ)` (Algorithm 2).
//!
//! The paper gathers the nodes within Euclidean radius `ρ` of `n_i` via
//! multi-hop communication; since hop counts are integral, `ρ` grows in
//! transmission-range (`γ`) increments. A node inside the Euclidean ring
//! but unreachable in `⌈ρ/γ⌉` hops cannot report its position, so the
//! neighborhood is the *intersection* of the Euclidean disk with the
//! h-hop BFS ball — which this module computes, with message accounting.

use crate::network::Network;
use crate::node::NodeId;
use crate::radio::MessageStats;
use std::collections::VecDeque;

/// The result of a ring query: members (center excluded), the hop budget
/// used, and messages spent collecting it.
#[derive(Debug, Clone)]
pub struct RingNeighborhood {
    /// Nodes within Euclidean `ρ` and `⌈ρ/γ⌉` hops, excluding the center.
    pub members: Vec<NodeId>,
    /// Hop budget `⌈ρ/γ⌉` used by the query.
    pub hops: usize,
    /// Messages expended (one broadcast per contacted node, one unicast
    /// reply per member relayed back over its hop distance).
    pub messages: MessageStats,
}

/// Collects `N(n_i, ρ)`: nodes within Euclidean distance `rho` of the
/// center **and** reachable within `⌈ρ/γ⌉` hops.
///
/// # Example
///
/// ```
/// use laacad_geom::Point;
/// use laacad_wsn::{multihop::ring_neighborhood, Network, NodeId};
/// let mut net = Network::from_positions(
///     0.12,
///     (0..5).map(|i| Point::new(i as f64 * 0.1, 0.0)),
/// );
/// let ring = ring_neighborhood(&mut net, NodeId(0), 0.25);
/// // Nodes at 0.1 and 0.2 are inside the ring and within 3 hops.
/// assert_eq!(ring.members, vec![NodeId(1), NodeId(2)]);
/// ```
pub fn ring_neighborhood(net: &mut Network, center: NodeId, rho: f64) -> RingNeighborhood {
    ring_neighborhood_with_slack(net, center, rho, 2)
}

/// [`ring_neighborhood`] with an explicit hop-slack budget.
///
/// The paper's `N(n_i, ρ)` is defined purely by Euclidean distance; a
/// multi-hop query needs `⌈ρ/γ⌉` hops along a straight path, but sparse
/// graphs route around gaps, so real queries grant extra hops. Two hops
/// of slack (the default above) make the collected set match the
/// Euclidean definition in all but pathologically stretched topologies —
/// Lemma 1's exactness depends on this set being complete.
pub fn ring_neighborhood_with_slack(
    net: &mut Network,
    center: NodeId,
    rho: f64,
    hop_slack: usize,
) -> RingNeighborhood {
    let gamma = net.gamma();
    let hops = (rho / gamma).ceil().max(1.0) as usize + hop_slack;
    let origin = net.position(center);
    let n = net.len();
    let mut dist = vec![usize::MAX; n];
    dist[center.index()] = 0;
    let mut queue = VecDeque::from([center]);
    let mut contacted = 0u64;
    let mut members = Vec::new();
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()];
        if du >= hops {
            continue;
        }
        contacted += 1; // u broadcasts the query onward
        for v in net.one_hop_neighbors(u) {
            if dist[v.index()] == usize::MAX {
                dist[v.index()] = du + 1;
                queue.push_back(v);
            }
        }
    }
    let mut replies = 0u64;
    for (i, &di) in dist.iter().enumerate() {
        if i != center.index()
            && di != usize::MAX
            && di <= hops
            && net.position(NodeId(i)).distance(origin) <= rho + 1e-12
        {
            members.push(NodeId(i));
            replies += di as u64; // reply relayed over its hop path
        }
    }
    RingNeighborhood {
        members,
        hops,
        messages: MessageStats {
            unicast: replies,
            broadcast: contacted,
        },
    }
}

/// Whether node `other` is inside the ring of `center` — convenience for
/// tests.
pub fn in_ring(net: &Network, center: NodeId, other: NodeId, rho: f64) -> bool {
    net.position(center).distance(net.position(other)) <= rho + 1e-12
}

#[cfg(test)]
mod tests {
    use super::*;
    use laacad_geom::Point;

    #[test]
    fn euclidean_and_hop_constraints_combine() {
        // A "C" shape: node 3 is Euclidean-close to node 0 but many hops
        // away around the C.
        let mut net = Network::from_positions(
            0.12,
            [
                Point::new(0.0, 0.0),  // 0
                Point::new(0.1, 0.0),  // 1
                Point::new(0.2, 0.0),  // 2
                Point::new(0.0, 0.05), // 3: close to 0, direct link
            ],
        );
        let ring = ring_neighborhood_with_slack(&mut net, NodeId(0), 0.12, 0);
        assert_eq!(ring.members, vec![NodeId(1), NodeId(3)]);
        assert_eq!(ring.hops, 1);
    }

    #[test]
    fn disconnected_nodes_never_join() {
        let mut net = Network::from_positions(
            0.1,
            [
                Point::new(0.0, 0.0),
                Point::new(0.5, 0.0), // inside a ρ=1 ring but > γ away: unreachable
            ],
        );
        let ring = ring_neighborhood(&mut net, NodeId(0), 1.0);
        assert!(ring.members.is_empty());
    }

    #[test]
    fn hop_limit_truncates_long_chains() {
        // Chain with spacing 0.1, γ = 0.12. ρ = 0.25 ⇒ 3 hops allowed,
        // Euclidean cut at 0.25 keeps nodes 1 and 2 only.
        let mut net =
            Network::from_positions(0.12, (0..6).map(|i| Point::new(i as f64 * 0.1, 0.0)));
        let ring = ring_neighborhood_with_slack(&mut net, NodeId(0), 0.25, 0);
        assert_eq!(ring.members, vec![NodeId(1), NodeId(2)]);
        // Wider ring reaches further down the chain.
        let ring2 = ring_neighborhood_with_slack(&mut net, NodeId(0), 0.45, 0);
        assert_eq!(
            ring2.members,
            vec![NodeId(1), NodeId(2), NodeId(3), NodeId(4)]
        );
    }

    #[test]
    fn slack_recovers_euclidean_members_over_detours() {
        // Node 3 is Euclidean-close to node 0 but the only path detours
        // through 1 and 2: strict hop budgets miss it, slack finds it.
        let mut net = Network::from_positions(
            0.12,
            [
                Point::new(0.0, 0.0),   // 0
                Point::new(0.06, 0.09), // 1 (detour, 1 hop from 0)
                Point::new(0.14, 0.09), // 2 (detour, 2 hops from 0)
                Point::new(0.15, 0.0),  // 3: 0.15 from node 0, 3 hops away
            ],
        );
        let strict = ring_neighborhood_with_slack(&mut net, NodeId(0), 0.16, 0);
        let slack = ring_neighborhood_with_slack(&mut net, NodeId(0), 0.16, 2);
        assert!(!strict.members.contains(&NodeId(3)), "{:?}", strict.members);
        assert!(slack.members.contains(&NodeId(3)), "{:?}", slack.members);
    }

    #[test]
    fn message_cost_grows_with_ring() {
        let mut net =
            Network::from_positions(0.12, (0..8).map(|i| Point::new(i as f64 * 0.1, 0.0)));
        let small = ring_neighborhood(&mut net, NodeId(0), 0.12);
        let large = ring_neighborhood(&mut net, NodeId(0), 0.6);
        assert!(large.messages.total() > small.messages.total());
    }
}
