//! Multi-hop ring neighborhoods `N(n_i, ρ)` (Algorithm 2).
//!
//! The paper gathers the nodes within Euclidean radius `ρ` of `n_i` via
//! multi-hop communication; since hop counts are integral, `ρ` grows in
//! transmission-range (`γ`) increments. A node inside the Euclidean ring
//! but unreachable in `⌈ρ/γ⌉` hops cannot report its position, so the
//! neighborhood is the *intersection* of the Euclidean disk with the
//! h-hop BFS ball — which this module computes, with message accounting.
//!
//! Two forms are provided:
//!
//! * [`ring_neighborhood`] / [`ring_neighborhood_with_slack`] — one-shot
//!   queries that run a fresh BFS (the reference semantics);
//! * [`RingQuery`] over a reusable [`RingScratch`] — an **incremental**
//!   query for the expanding-ring search: each `ρ += γ` expansion resumes
//!   the BFS frontier where the previous one stopped instead of
//!   restarting from the center, while reporting byte-identical members
//!   and [`MessageStats`] to a fresh query at the same `(ρ, hops)`.

use crate::adjacency::Adjacency;
use crate::network::Network;
use crate::node::NodeId;
use crate::radio::MessageStats;
use laacad_geom::Point;
use std::collections::VecDeque;

/// The result of a ring query: members (center excluded), the hop budget
/// used, and messages spent collecting it.
#[derive(Debug, Clone)]
pub struct RingNeighborhood {
    /// Nodes within Euclidean `ρ` and `⌈ρ/γ⌉` hops, excluding the center.
    pub members: Vec<NodeId>,
    /// Hop budget `⌈ρ/γ⌉` used by the query.
    pub hops: usize,
    /// Messages expended (one broadcast per contacted node, one unicast
    /// reply per member relayed back over its hop distance).
    pub messages: MessageStats,
}

/// Collects `N(n_i, ρ)`: nodes within Euclidean distance `rho` of the
/// center **and** reachable within `⌈ρ/γ⌉` hops.
///
/// # Example
///
/// ```
/// use laacad_geom::Point;
/// use laacad_wsn::{multihop::ring_neighborhood, Network, NodeId};
/// let net = Network::from_positions(
///     0.12,
///     (0..5).map(|i| Point::new(i as f64 * 0.1, 0.0)),
/// );
/// let ring = ring_neighborhood(&net, NodeId(0), 0.25);
/// // Nodes at 0.1 and 0.2 are inside the ring and within 3 hops.
/// assert_eq!(ring.members, vec![NodeId(1), NodeId(2)]);
/// ```
pub fn ring_neighborhood(net: &Network, center: NodeId, rho: f64) -> RingNeighborhood {
    ring_neighborhood_with_slack(net, center, rho, DEFAULT_HOP_SLACK)
}

/// The default hop-slack budget of [`ring_neighborhood`] (see
/// [`ring_neighborhood_with_slack`] for why it exists).
pub const DEFAULT_HOP_SLACK: usize = 2;

/// Converts a Euclidean ring radius into the hop budget of the query —
/// `⌈ρ/γ⌉ + slack` (at least `1 + slack`).
pub fn hop_budget(rho: f64, gamma: f64, hop_slack: usize) -> usize {
    (rho / gamma).ceil().max(1.0) as usize + hop_slack
}

/// [`ring_neighborhood`] with an explicit hop-slack budget.
///
/// The paper's `N(n_i, ρ)` is defined purely by Euclidean distance; a
/// multi-hop query needs `⌈ρ/γ⌉` hops along a straight path, but sparse
/// graphs route around gaps, so real queries grant extra hops. Two hops
/// of slack (the default above) make the collected set match the
/// Euclidean definition in all but pathologically stretched topologies —
/// Lemma 1's exactness depends on this set being complete.
pub fn ring_neighborhood_with_slack(
    net: &Network,
    center: NodeId,
    rho: f64,
    hop_slack: usize,
) -> RingNeighborhood {
    let gamma = net.gamma();
    let hops = hop_budget(rho, gamma, hop_slack);
    let origin = net.position(center);
    let n = net.len();
    let mut dist = vec![usize::MAX; n];
    dist[center.index()] = 0;
    let mut queue = VecDeque::from([center]);
    let mut contacted = 0u64;
    let mut members = Vec::new();
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()];
        if du >= hops {
            continue;
        }
        contacted += 1; // u broadcasts the query onward
        for v in net.one_hop_neighbors(u) {
            if dist[v.index()] == usize::MAX {
                dist[v.index()] = du + 1;
                queue.push_back(v);
            }
        }
    }
    let mut replies = 0u64;
    // Squared-distance ring filter; `RingQuery::collect` applies the
    // byte-identical expression so incremental and fresh queries agree.
    let limit = rho + 1e-12;
    let limit_sq = limit * limit;
    for (i, &di) in dist.iter().enumerate() {
        if i != center.index()
            && di != usize::MAX
            && di <= hops
            && net.position(NodeId(i)).distance_sq(origin) <= limit_sq
        {
            members.push(NodeId(i));
            replies += di as u64; // reply relayed over its hop path
        }
    }
    RingNeighborhood {
        members,
        hops,
        messages: MessageStats {
            unicast: replies,
            broadcast: contacted,
        },
    }
}

/// Reusable buffers for [`RingQuery`]: an epoch-stamped BFS
/// visited/distance array (no `O(N)` clear between searches), the
/// frontier queue, a neighbor scratch and the member bookkeeping.
///
/// One scratch serves any number of consecutive searches over networks
/// of any size; the worker threads of the synchronous round engine each
/// own one.
#[derive(Debug, Clone, Default)]
pub struct RingScratch {
    epoch: u64,
    stamp: Vec<u64>,
    dist: Vec<u32>,
    frontier: VecDeque<usize>,
    neighbors: Vec<usize>,
    level_counts: Vec<u64>,
    members: Vec<usize>,
    pending: Vec<usize>,
}

impl RingScratch {
    /// Creates an empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Members of the most recent search (ascending ids, center
    /// excluded). Valid until the next [`RingQuery::begin`] on this
    /// scratch — lets callers consume the member set without
    /// materializing an owned vector.
    pub fn last_members(&self) -> &[usize] {
        &self.members
    }

    /// Pre-sizes the BFS arrays for searches over `n` nodes, so the
    /// first search of a round does not grow them mid-flight (the round
    /// engine's arena pre-sizing calls this once per worker from `N`).
    pub fn reserve(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.dist.resize(n, 0);
        }
    }

    /// Starts a new search: bumps the epoch and sizes the arrays to `n`.
    fn reset(&mut self, n: usize) {
        self.epoch += 1;
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.dist.resize(n, 0);
        }
        self.frontier.clear();
        self.level_counts.clear();
        self.members.clear();
        self.pending.clear();
    }

    #[inline]
    fn visited(&self, i: usize) -> bool {
        self.stamp[i] == self.epoch
    }

    #[inline]
    fn visit(&mut self, i: usize, d: u32) {
        self.stamp[i] = self.epoch;
        self.dist[i] = d;
        if self.level_counts.len() <= d as usize {
            self.level_counts.resize(d as usize + 1, 0);
        }
        self.level_counts[d as usize] += 1;
    }
}

/// One step of an incremental ring query (see [`RingQuery::collect`]).
#[derive(Debug, Clone, Copy)]
pub struct RingStep {
    /// Members gained by this expansion (the set is monotone, so zero new
    /// members means the neighborhood is unchanged).
    pub new_members: usize,
    /// Messages a fresh [`ring_neighborhood_with_slack`] query at the
    /// same `(ρ, hops)` would have spent — the paper's accounting, where
    /// every expansion re-floods the ring.
    pub messages: MessageStats,
}

/// An in-progress incremental ring search around one node.
///
/// Created by [`RingQuery::begin`]; each [`RingQuery::collect`] call
/// expands to a larger `(ρ, hops)` and returns the step accounting. The
/// member set, farthest-member distance and message totals it reports
/// are **identical** to running a fresh BFS per expansion — only the
/// work is incremental: the BFS frontier resumes where it stopped, and
/// the visited array is epoch-stamped instead of reallocated.
#[derive(Debug)]
pub struct RingQuery<'net, 'scr> {
    net: &'net Network,
    /// One-hop rows from a shared per-round snapshot, when the caller has
    /// one (synchronous rounds); `None` falls back to live grid queries.
    adjacency: Option<&'net Adjacency>,
    scratch: &'scr mut RingScratch,
    center: usize,
    origin: Point,
    member_reply_sum: u64,
    farthest: f64,
}

impl<'net, 'scr> RingQuery<'net, 'scr> {
    /// Starts a search around `center` using `scratch`'s buffers, with
    /// one-hop neighborhoods answered by live grid queries.
    pub fn begin(net: &'net Network, center: NodeId, scratch: &'scr mut RingScratch) -> Self {
        Self::begin_inner(net, None, center, scratch)
    }

    /// [`RingQuery::begin`] over a prebuilt [`Adjacency`] snapshot (must
    /// describe `net`'s current positions).
    pub fn begin_indexed(
        net: &'net Network,
        adjacency: &'net Adjacency,
        center: NodeId,
        scratch: &'scr mut RingScratch,
    ) -> Self {
        debug_assert_eq!(adjacency.len(), net.len(), "stale adjacency snapshot");
        Self::begin_inner(net, Some(adjacency), center, scratch)
    }

    fn begin_inner(
        net: &'net Network,
        adjacency: Option<&'net Adjacency>,
        center: NodeId,
        scratch: &'scr mut RingScratch,
    ) -> Self {
        scratch.reset(net.len());
        scratch.visit(center.index(), 0);
        scratch.frontier.push_back(center.index());
        RingQuery {
            origin: net.position(center),
            net,
            adjacency,
            scratch,
            center: center.index(),
            member_reply_sum: 0,
            farthest: 0.0,
        }
    }

    /// Expands the search to Euclidean radius `rho` and hop budget
    /// `hops`, both of which must be non-decreasing across calls.
    ///
    /// Returns the accounting a fresh query at `(rho, hops)` would
    /// produce; the member set is monotone across calls.
    pub fn collect(&mut self, rho: f64, hops: usize) -> RingStep {
        // Resume the BFS: explore every node with dist < hops.
        while let Some(&u) = self.scratch.frontier.front() {
            let du = self.scratch.dist[u];
            if du as usize >= hops {
                break; // frontier is sorted by distance; revisit later
            }
            self.scratch.frontier.pop_front();
            match self.adjacency {
                Some(adj) => {
                    for &v in adj.neighbors(u) {
                        let v = v as usize;
                        if !self.scratch.visited(v) {
                            self.scratch.visit(v, du + 1);
                            self.scratch.frontier.push_back(v);
                            if v != self.center {
                                self.scratch.pending.push(v);
                            }
                        }
                    }
                }
                None => {
                    let mut neighbors = std::mem::take(&mut self.scratch.neighbors);
                    self.net.one_hop_neighbors_into(NodeId(u), &mut neighbors);
                    for &v in &neighbors {
                        if !self.scratch.visited(v) {
                            self.scratch.visit(v, du + 1);
                            self.scratch.frontier.push_back(v);
                            if v != self.center {
                                self.scratch.pending.push(v);
                            }
                        }
                    }
                    self.scratch.neighbors = neighbors;
                }
            }
        }
        // Promote pending nodes that now satisfy both filters. Membership
        // thresholds (rho, hops) only grow, so nodes join exactly once.
        // The squared ring filter is the same expression the fresh query
        // uses, so both report identical member sets.
        let limit = rho + 1e-12;
        let limit_sq = limit * limit;
        let mut new_members = 0;
        let mut i = 0;
        while i < self.scratch.pending.len() {
            let v = self.scratch.pending[i];
            let dv = self.scratch.dist[v];
            let in_ring = self.net.position(NodeId(v)).distance_sq(self.origin) <= limit_sq;
            if dv as usize <= hops && in_ring {
                self.scratch.pending.swap_remove(i);
                self.scratch.members.push(v);
                self.member_reply_sum += dv as u64;
                self.farthest = self
                    .farthest
                    .max(self.net.position(NodeId(v)).distance(self.origin));
                new_members += 1;
            } else {
                i += 1;
            }
        }
        if new_members > 0 {
            // Keep members in ascending index order — the order a fresh
            // query reports and the one downstream geometry consumes.
            self.scratch.members.sort_unstable();
        }
        // A fresh query would have every node with dist < hops broadcast
        // and every member reply over its hop path.
        let contacted: u64 = self.scratch.level_counts.iter().take(hops).sum();
        RingStep {
            new_members,
            messages: MessageStats {
                unicast: self.member_reply_sum,
                broadcast: contacted,
            },
        }
    }

    /// Current members (ascending ids, center excluded).
    pub fn members(&self) -> &[usize] {
        &self.scratch.members
    }

    /// Current members as owned [`NodeId`]s.
    pub fn members_to_vec(&self) -> Vec<NodeId> {
        self.scratch.members.iter().map(|&i| NodeId(i)).collect()
    }

    /// Euclidean distance from the center to the farthest member (0 when
    /// the neighborhood is empty).
    pub fn farthest_member_distance(&self) -> f64 {
        self.farthest
    }

    /// Euclidean distance from the center to the farthest node the BFS
    /// *ever explored* — members, relays, and every node charged in the
    /// broadcast accounting (0 when nothing beyond the center was
    /// reached).
    ///
    /// This is the query's exact contact radius: a node outside this
    /// distance was never heard from and never influenced the member
    /// set, the hop distances, or the message totals. The conservative
    /// hop-path bound is `hops·γ`; the recorded radius is what the flood
    /// actually covered, which is what lets change-tracking callers
    /// re-activate only the genuinely reachable neighborhood.
    pub fn contact_radius(&self) -> f64 {
        // Every explored node is either a member (folded into `farthest`
        // as it was promoted) or still pending. The square root commutes
        // with the max (both monotone), so one suffices.
        let mut far_sq: f64 = 0.0;
        for &v in &self.scratch.pending {
            far_sq = far_sq.max(self.net.position(NodeId(v)).distance_sq(self.origin));
        }
        self.farthest.max(far_sq.sqrt())
    }
}

/// Whether node `other` is inside the ring of `center` — convenience for
/// tests.
pub fn in_ring(net: &Network, center: NodeId, other: NodeId, rho: f64) -> bool {
    net.position(center).distance(net.position(other)) <= rho + 1e-12
}

#[cfg(test)]
mod tests {
    use super::*;
    use laacad_geom::Point;

    #[test]
    fn euclidean_and_hop_constraints_combine() {
        // A "C" shape: node 3 is Euclidean-close to node 0 but many hops
        // away around the C.
        let net = Network::from_positions(
            0.12,
            [
                Point::new(0.0, 0.0),  // 0
                Point::new(0.1, 0.0),  // 1
                Point::new(0.2, 0.0),  // 2
                Point::new(0.0, 0.05), // 3: close to 0, direct link
            ],
        );
        let ring = ring_neighborhood_with_slack(&net, NodeId(0), 0.12, 0);
        assert_eq!(ring.members, vec![NodeId(1), NodeId(3)]);
        assert_eq!(ring.hops, 1);
    }

    #[test]
    fn disconnected_nodes_never_join() {
        let net = Network::from_positions(
            0.1,
            [
                Point::new(0.0, 0.0),
                Point::new(0.5, 0.0), // inside a ρ=1 ring but > γ away: unreachable
            ],
        );
        let ring = ring_neighborhood(&net, NodeId(0), 1.0);
        assert!(ring.members.is_empty());
    }

    #[test]
    fn hop_limit_truncates_long_chains() {
        // Chain with spacing 0.1, γ = 0.12. ρ = 0.25 ⇒ 3 hops allowed,
        // Euclidean cut at 0.25 keeps nodes 1 and 2 only.
        let net = Network::from_positions(0.12, (0..6).map(|i| Point::new(i as f64 * 0.1, 0.0)));
        let ring = ring_neighborhood_with_slack(&net, NodeId(0), 0.25, 0);
        assert_eq!(ring.members, vec![NodeId(1), NodeId(2)]);
        // Wider ring reaches further down the chain.
        let ring2 = ring_neighborhood_with_slack(&net, NodeId(0), 0.45, 0);
        assert_eq!(
            ring2.members,
            vec![NodeId(1), NodeId(2), NodeId(3), NodeId(4)]
        );
    }

    #[test]
    fn slack_recovers_euclidean_members_over_detours() {
        // Node 3 is Euclidean-close to node 0 but the only path detours
        // through 1 and 2: strict hop budgets miss it, slack finds it.
        let net = Network::from_positions(
            0.12,
            [
                Point::new(0.0, 0.0),   // 0
                Point::new(0.06, 0.09), // 1 (detour, 1 hop from 0)
                Point::new(0.14, 0.09), // 2 (detour, 2 hops from 0)
                Point::new(0.15, 0.0),  // 3: 0.15 from node 0, 3 hops away
            ],
        );
        let strict = ring_neighborhood_with_slack(&net, NodeId(0), 0.16, 0);
        let slack = ring_neighborhood_with_slack(&net, NodeId(0), 0.16, 2);
        assert!(!strict.members.contains(&NodeId(3)), "{:?}", strict.members);
        assert!(slack.members.contains(&NodeId(3)), "{:?}", slack.members);
    }

    #[test]
    fn message_cost_grows_with_ring() {
        let net = Network::from_positions(0.12, (0..8).map(|i| Point::new(i as f64 * 0.1, 0.0)));
        let small = ring_neighborhood(&net, NodeId(0), 0.12);
        let large = ring_neighborhood(&net, NodeId(0), 0.6);
        assert!(large.messages.total() > small.messages.total());
    }

    #[test]
    fn incremental_query_matches_fresh_queries_step_by_step() {
        // A 9×9 grid: expand a query γ by γ and compare every step with a
        // from-scratch BFS at the same (ρ, hops).
        let gamma = 0.15;
        let net = Network::from_positions(
            gamma,
            (0..9).flat_map(|i| (0..9).map(move |j| Point::new(i as f64 * 0.1, j as f64 * 0.1))),
        );
        for center in [0usize, 40, 80] {
            let mut scratch = RingScratch::new();
            let mut query = RingQuery::begin(&net, NodeId(center), &mut scratch);
            let mut rho = 0.0;
            for _ in 0..10 {
                rho += gamma;
                let hops = hop_budget(rho, gamma, DEFAULT_HOP_SLACK);
                let step = query.collect(rho, hops);
                let fresh =
                    ring_neighborhood_with_slack(&net, NodeId(center), rho, DEFAULT_HOP_SLACK);
                assert_eq!(
                    query.members_to_vec(),
                    fresh.members,
                    "center {center} ρ {rho}"
                );
                assert_eq!(step.messages, fresh.messages, "center {center} ρ {rho}");
                let expect_far = fresh
                    .members
                    .iter()
                    .map(|&m| net.position(m).distance(net.position(NodeId(center))))
                    .fold(0.0, f64::max);
                assert!(
                    (query.farthest_member_distance() - expect_far).abs() < 1e-12,
                    "center {center} ρ {rho}"
                );
            }
        }
    }

    #[test]
    fn indexed_query_matches_grid_query() {
        let gamma = 0.15;
        let net = Network::from_positions(
            gamma,
            (0..7).flat_map(|i| (0..7).map(move |j| Point::new(i as f64 * 0.1, j as f64 * 0.1))),
        );
        let adj = Adjacency::build(&net);
        for center in [0usize, 24, 48] {
            let mut s1 = RingScratch::new();
            let mut s2 = RingScratch::new();
            let mut grid = RingQuery::begin(&net, NodeId(center), &mut s1);
            let mut csr = RingQuery::begin_indexed(&net, &adj, NodeId(center), &mut s2);
            let mut rho = 0.0;
            for _ in 0..6 {
                rho += gamma;
                let hops = hop_budget(rho, gamma, DEFAULT_HOP_SLACK);
                let a = grid.collect(rho, hops);
                let b = csr.collect(rho, hops);
                assert_eq!(a.new_members, b.new_members, "center {center} ρ {rho}");
                assert_eq!(a.messages, b.messages, "center {center} ρ {rho}");
                assert_eq!(grid.members(), csr.members(), "center {center} ρ {rho}");
            }
        }
    }

    #[test]
    fn contact_radius_covers_every_explored_node() {
        // The recorded contact radius must equal the farthest node the
        // BFS stamped (members and pending relays alike) and bound every
        // member distance.
        let gamma = 0.15;
        let net = Network::from_positions(
            gamma,
            (0..9).flat_map(|i| (0..9).map(move |j| Point::new(i as f64 * 0.1, j as f64 * 0.1))),
        );
        for center in [0usize, 40] {
            let mut scratch = RingScratch::new();
            let mut query = RingQuery::begin(&net, NodeId(center), &mut scratch);
            let origin = net.position(NodeId(center));
            let rho = 2.0 * gamma;
            let hops = hop_budget(rho, gamma, DEFAULT_HOP_SLACK);
            query.collect(rho, hops);
            let contact = query.contact_radius();
            // Brute-force BFS to the same hop budget: the stamped set.
            let mut expect: f64 = 0.0;
            let mut dist = vec![usize::MAX; net.len()];
            dist[center] = 0;
            let mut queue = std::collections::VecDeque::from([center]);
            while let Some(u) = queue.pop_front() {
                if dist[u] >= hops {
                    continue;
                }
                for v in net.one_hop_neighbors(NodeId(u)) {
                    if dist[v.index()] == usize::MAX {
                        dist[v.index()] = dist[u] + 1;
                        queue.push_back(v.index());
                    }
                }
            }
            for (i, &d) in dist.iter().enumerate() {
                if i != center && d != usize::MAX && d <= hops {
                    expect = expect.max(net.position(NodeId(i)).distance(origin));
                }
            }
            assert!(
                (contact - expect).abs() < 1e-12,
                "center {center}: contact {contact} vs stamped max {expect}"
            );
            assert!(contact >= query.farthest_member_distance());
        }
    }

    #[test]
    fn scratch_reuse_across_searches_is_clean() {
        let net = Network::from_positions(0.12, (0..6).map(|i| Point::new(i as f64 * 0.1, 0.0)));
        let mut scratch = RingScratch::new();
        for center in 0..net.len() {
            let mut query = RingQuery::begin(&net, NodeId(center), &mut scratch);
            let hops = hop_budget(0.25, 0.12, DEFAULT_HOP_SLACK);
            let step = query.collect(0.25, hops);
            let fresh = ring_neighborhood(&net, NodeId(center), 0.25);
            assert_eq!(query.members_to_vec(), fresh.members, "center {center}");
            assert_eq!(step.messages, fresh.messages, "center {center}");
        }
    }
}
