//! Sensing-energy model (paper Sec. V-B).
//!
//! "As the sensing range is modeled as a disk centered at `u_i` with
//! radius `r_i`, we naturally define the energy consumption function as
//! `E(r_i) = π r_i²`." The exponent is configurable so the ablation
//! benches can explore super-quadratic sensing costs.

use crate::network::Network;

/// Energy as a function of sensing range: `E(r) = c · r^η`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Multiplicative coefficient `c`.
    pub coefficient: f64,
    /// Exponent `η` (2 for the paper's disk-area model).
    pub exponent: f64,
}

impl EnergyModel {
    /// The paper's model `E(r) = π r²`.
    pub const DISK_AREA: EnergyModel = EnergyModel {
        coefficient: std::f64::consts::PI,
        exponent: 2.0,
    };

    /// Creates a model.
    ///
    /// # Panics
    ///
    /// Panics for non-positive coefficient or exponent (energy must be
    /// increasing in `r`, as the paper assumes).
    pub fn new(coefficient: f64, exponent: f64) -> Self {
        assert!(
            coefficient > 0.0 && exponent > 0.0,
            "energy model must be increasing"
        );
        EnergyModel {
            coefficient,
            exponent,
        }
    }

    /// Energy drawn by sensing range `r`.
    #[inline]
    pub fn energy(&self, r: f64) -> f64 {
        self.coefficient * r.powf(self.exponent)
    }

    /// Maximum per-node sensing load `max_i E(r_i)` (Fig. 7a).
    pub fn max_load(&self, net: &Network) -> f64 {
        net.sensing_radii()
            .iter()
            .map(|&r| self.energy(r))
            .fold(0.0, f64::max)
    }

    /// Total sensing load `Σ_i E(r_i)` (Fig. 7b).
    pub fn total_load(&self, net: &Network) -> f64 {
        net.sensing_radii().iter().map(|&r| self.energy(r)).sum()
    }

    /// Load-balance ratio `min_i E(r_i) / max_i E(r_i)` — approaches 1 as
    /// LAACAD equalizes sensing ranges (Sec. V-A).
    pub fn balance_ratio(&self, net: &Network) -> f64 {
        let max = self.max_load(net);
        if max <= 0.0 {
            return 1.0;
        }
        let min = net
            .sensing_radii()
            .iter()
            .map(|&r| self.energy(r))
            .fold(f64::INFINITY, f64::min);
        min / max
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::DISK_AREA
    }
}

impl std::fmt::Display for EnergyModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "E(r) = {:.4}·r^{}", self.coefficient, self.exponent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laacad_geom::Point;

    #[test]
    fn disk_area_model_matches_pi_r_squared() {
        let m = EnergyModel::DISK_AREA;
        assert!((m.energy(2.0) - 4.0 * std::f64::consts::PI).abs() < 1e-12);
        assert_eq!(m.energy(0.0), 0.0);
    }

    #[test]
    fn network_loads() {
        let mut net = Network::from_positions(
            0.1,
            [
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(2.0, 0.0),
            ],
        );
        for (i, r) in [0.1, 0.2, 0.3].into_iter().enumerate() {
            net.set_sensing_radius(crate::NodeId(i), r);
        }
        let m = EnergyModel::DISK_AREA;
        assert!((m.max_load(&net) - m.energy(0.3)).abs() < 1e-12);
        let total = m.energy(0.1) + m.energy(0.2) + m.energy(0.3);
        assert!((m.total_load(&net) - total).abs() < 1e-12);
        let ratio = m.energy(0.1) / m.energy(0.3);
        assert!((m.balance_ratio(&net) - ratio).abs() < 1e-12);
    }

    #[test]
    fn custom_exponent() {
        let m = EnergyModel::new(1.0, 4.0);
        assert!((m.energy(2.0) - 16.0).abs() < 1e-12);
    }

    #[test]
    fn empty_network_degenerate_loads() {
        let net = Network::new(0.1);
        let m = EnergyModel::DISK_AREA;
        assert_eq!(m.max_load(&net), 0.0);
        assert_eq!(m.total_load(&net), 0.0);
        assert_eq!(m.balance_ratio(&net), 1.0);
    }

    #[test]
    #[should_panic(expected = "increasing")]
    fn non_increasing_model_rejected() {
        let _ = EnergyModel::new(1.0, 0.0);
    }
}
