//! Classical multidimensional scaling (MDS) in 2-D.
//!
//! Algorithm 2 line 4: "Construct a local coordinate system using
//! N(n_i, ρ)" — the paper cites Shang & Ruml's improved MDS localization
//! \[28\]. We implement classical (Torgerson) MDS: double-center the squared
//! distance matrix and take the top-2 eigenpairs (power iteration with
//! deflation). The output reproduces the geometry up to a rigid transform
//! (plus reflection), which is all a relative coordinate system needs.

use laacad_geom::Point;

/// Result of an MDS embedding.
#[derive(Debug, Clone)]
pub struct MdsEmbedding {
    /// One 2-D coordinate per input row.
    pub coords: Vec<Point>,
    /// The two leading eigenvalues of the double-centered Gram matrix —
    /// small or negative trailing values signal non-Euclidean (noisy)
    /// input.
    pub eigenvalues: [f64; 2],
}

/// Errors for [`classical_mds`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MdsError {
    /// Fewer than 2 points or a non-square/asymmetric matrix.
    BadInput,
    /// All distances are (numerically) zero — geometry is undetermined.
    Degenerate,
}

impl std::fmt::Display for MdsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            MdsError::BadInput => "MDS needs a square symmetric matrix of ≥ 2 points",
            MdsError::Degenerate => "MDS input distances are all zero",
        };
        f.write_str(s)
    }
}

impl std::error::Error for MdsError {}

/// Embeds a symmetric distance matrix into the plane by classical MDS.
///
/// # Errors
///
/// [`MdsError::BadInput`] for malformed matrices; [`MdsError::Degenerate`]
/// when every pairwise distance is zero.
///
/// # Example
///
/// ```
/// use laacad_wsn::mds::classical_mds;
/// // A 3-4-5 right triangle, described only by its distances.
/// let d = vec![
///     vec![0.0, 3.0, 4.0],
///     vec![3.0, 0.0, 5.0],
///     vec![4.0, 5.0, 0.0],
/// ];
/// let e = classical_mds(&d).unwrap();
/// let c = &e.coords;
/// assert!((c[0].distance(c[1]) - 3.0).abs() < 1e-6);
/// assert!((c[0].distance(c[2]) - 4.0).abs() < 1e-6);
/// assert!((c[1].distance(c[2]) - 5.0).abs() < 1e-6);
/// ```
pub fn classical_mds(distances: &[Vec<f64>]) -> Result<MdsEmbedding, MdsError> {
    let n = distances.len();
    if n < 2 || distances.iter().any(|row| row.len() != n) {
        return Err(MdsError::BadInput);
    }
    // Gram matrix B = −½ J D² J (double centering).
    let d2: Vec<Vec<f64>> = distances
        .iter()
        .map(|row| row.iter().map(|&d| d * d).collect())
        .collect();
    let row_mean: Vec<f64> = d2
        .iter()
        .map(|r| r.iter().sum::<f64>() / n as f64)
        .collect();
    let grand = row_mean.iter().sum::<f64>() / n as f64;
    let mut b = vec![vec![0.0; n]; n];
    let mut norm = 0.0f64;
    for i in 0..n {
        for j in 0..n {
            b[i][j] = -0.5 * (d2[i][j] - row_mean[i] - row_mean[j] + grand);
            norm = norm.max(b[i][j].abs());
        }
    }
    if norm <= 1e-15 {
        return Err(MdsError::Degenerate);
    }

    let (l1, v1) = power_iteration(&b, None);
    let (l2, v2) = power_iteration(&b, Some((l1, &v1)));
    let s1 = l1.max(0.0).sqrt();
    let s2 = l2.max(0.0).sqrt();
    let coords = (0..n).map(|i| Point::new(s1 * v1[i], s2 * v2[i])).collect();
    Ok(MdsEmbedding {
        coords,
        eigenvalues: [l1, l2],
    })
}

/// Leading eigenpair of a symmetric matrix by power iteration, optionally
/// deflating a known eigenpair first.
fn power_iteration(b: &[Vec<f64>], deflate: Option<(f64, &[f64])>) -> (f64, Vec<f64>) {
    let n = b.len();
    // Deterministic pseudo-random start to avoid adversarial orthogonality.
    let mut v: Vec<f64> = (0..n)
        .map(|i| ((i as f64 * 0.754877666 + 0.1).sin()).abs() + 0.1)
        .collect();
    normalize(&mut v);
    let mut lambda = 0.0;
    for _ in 0..500 {
        let mut w = mat_vec(b, &v);
        if let Some((l, u)) = deflate {
            // Hotelling deflation: w = B v − λ (uᵀv) u.
            let uv = dot(u, &v);
            for i in 0..n {
                w[i] -= l * uv * u[i];
            }
        }
        let new_lambda = dot(&v, &w);
        normalize(&mut w);
        let delta: f64 = v
            .iter()
            .zip(&w)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        v = w;
        lambda = new_lambda;
        if delta < 1e-14 {
            break;
        }
    }
    (lambda, v)
}

fn mat_vec(b: &[Vec<f64>], v: &[f64]) -> Vec<f64> {
    b.iter().map(|row| dot(row, v)).collect()
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn normalize(v: &mut [f64]) {
    let n = dot(v, v).sqrt();
    if n > 1e-300 {
        for x in v.iter_mut() {
            *x /= n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laacad_geom::transform::procrustes;
    use laacad_region::sampling::SplitMix64;

    fn distance_matrix(pts: &[Point]) -> Vec<Vec<f64>> {
        pts.iter()
            .map(|a| pts.iter().map(|b| a.distance(*b)).collect())
            .collect()
    }

    #[test]
    fn reconstructs_random_clouds_up_to_isometry() {
        let mut rng = SplitMix64::new(99);
        for trial in 0..5 {
            let pts: Vec<Point> = (0..12)
                .map(|_| Point::new(rng.next_f64() * 4.0, rng.next_f64() * 4.0))
                .collect();
            let e = classical_mds(&distance_matrix(&pts)).unwrap();
            // Align the embedding onto the truth and check the residual.
            let t = procrustes(&e.coords, &pts).unwrap();
            let max_err = e
                .coords
                .iter()
                .zip(&pts)
                .map(|(c, p)| t.apply(*c).distance(*p))
                .fold(0.0, f64::max);
            assert!(max_err < 1e-6, "trial {trial}: err {max_err}");
        }
    }

    #[test]
    fn pairwise_distances_preserved() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 1.0),
            Point::new(-1.0, 3.0),
        ];
        let e = classical_mds(&distance_matrix(&pts)).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                let want = pts[i].distance(pts[j]);
                let got = e.coords[i].distance(e.coords[j]);
                assert!((want - got).abs() < 1e-6, "({i},{j}): {want} vs {got}");
            }
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // symmetric matrix update needs both indices
    fn noisy_input_still_embeds_approximately() {
        let mut rng = SplitMix64::new(5);
        let pts: Vec<Point> = (0..10)
            .map(|_| Point::new(rng.next_f64() * 2.0, rng.next_f64() * 2.0))
            .collect();
        let mut d = distance_matrix(&pts);
        for i in 0..10 {
            for j in i + 1..10 {
                let noisy = d[i][j] * (1.0 + 0.02 * (rng.next_f64() - 0.5));
                d[i][j] = noisy;
                d[j][i] = noisy;
            }
        }
        let e = classical_mds(&d).unwrap();
        let t = procrustes(&e.coords, &pts).unwrap();
        let rms: f64 = (e
            .coords
            .iter()
            .zip(&pts)
            .map(|(c, p)| t.apply(*c).distance_sq(*p))
            .sum::<f64>()
            / 10.0)
            .sqrt();
        assert!(rms < 0.1, "rms {rms}");
    }

    #[test]
    fn degenerate_and_bad_inputs() {
        assert_eq!(classical_mds(&[vec![0.0]]).unwrap_err(), MdsError::BadInput);
        let zeros = vec![vec![0.0; 3]; 3];
        assert_eq!(classical_mds(&zeros).unwrap_err(), MdsError::Degenerate);
        let ragged = vec![vec![0.0, 1.0], vec![1.0, 0.0, 2.0]];
        assert_eq!(classical_mds(&ragged).unwrap_err(), MdsError::BadInput);
    }

    #[test]
    fn collinear_points_embed_on_a_line() {
        let pts: Vec<Point> = (0..5).map(|i| Point::new(i as f64, 0.0)).collect();
        let e = classical_mds(&distance_matrix(&pts)).unwrap();
        // Second eigenvalue ≈ 0: the cloud is 1-D.
        assert!(e.eigenvalues[1].abs() < 1e-6 * e.eigenvalues[0].max(1.0));
        for i in 0..5 {
            for j in 0..5 {
                let want = pts[i].distance(pts[j]);
                let got = e.coords[i].distance(e.coords[j]);
                assert!((want - got).abs() < 1e-6);
            }
        }
    }
}
