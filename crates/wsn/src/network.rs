//! The sensor network container.

use crate::flat::GridIndex;
use crate::node::{NodeId, SensorNode};
use laacad_geom::Point;

/// A WSN: a set of sensor nodes with one shared transmission range `γ`
/// (paper Sec. III-A: "All nodes have an identical transmission range γ"),
/// spatially indexed for the radius queries every LAACAD round performs.
///
/// Node state is stored **struct-of-arrays**: parallel `positions` /
/// `sensing_radius` / `distance_moved` vectors indexed by [`NodeId`], so
/// the round engine's sweeps (position snapshots, radius reductions,
/// odometry totals) stream over dense homogeneous memory instead of
/// striding through per-node structs. [`SensorNode`] survives only as a
/// by-value view at the API boundary ([`Network::node`] /
/// [`Network::nodes`]).
///
/// The spatial index is maintained **eagerly** on every mutation, so the
/// whole query surface ([`Network::nodes_within`],
/// [`Network::one_hop_neighbors`], the multihop ring machinery) works
/// through `&Network`. That is what lets the synchronous round engine
/// compute every node's local view from one shared snapshot across
/// worker threads. The index layout is a [`GridIndex`]: the dense flat
/// grid when enabled and the cloud is dense enough, the hash grid
/// otherwise — query results are bit-identical either way.
///
/// # Example
///
/// ```
/// use laacad_geom::Point;
/// use laacad_wsn::Network;
/// let mut net = Network::new(0.2);
/// let a = net.add_node(Point::new(0.0, 0.0));
/// net.move_node(a, Point::new(0.5, 0.5));
/// assert_eq!(net.position(a), Point::new(0.5, 0.5));
/// ```
#[derive(Debug, Clone)]
pub struct Network {
    positions: Vec<Point>,
    sensing_radius: Vec<f64>,
    distance_moved: Vec<f64>,
    gamma: f64,
    grid: GridIndex,
    /// Whether rebuilds should attempt the flat dense layout.
    prefer_flat: bool,
    /// Odometry of nodes that have since been removed (kept so that
    /// movement-energy totals survive node failures).
    retired_distance: f64,
}

impl Network {
    /// Creates an empty network with transmission range `gamma`.
    ///
    /// # Panics
    ///
    /// Panics when `gamma` is not strictly positive and finite.
    pub fn new(gamma: f64) -> Self {
        assert!(
            gamma.is_finite() && gamma > 0.0,
            "transmission range must be positive, got {gamma}"
        );
        Network {
            positions: Vec::new(),
            sensing_radius: Vec::new(),
            distance_moved: Vec::new(),
            gamma,
            grid: GridIndex::build(&[], gamma.max(1e-9), false),
            prefer_flat: false,
            retired_distance: 0.0,
        }
    }

    /// Creates a network from initial node positions.
    pub fn from_positions(gamma: f64, positions: impl IntoIterator<Item = Point>) -> Self {
        let mut net = Network::new(gamma);
        net.positions = positions.into_iter().collect();
        net.sensing_radius = vec![0.0; net.positions.len()];
        net.distance_moved = vec![0.0; net.positions.len()];
        net.rebuild_grid();
        net
    }

    /// Selects the spatial-index layout: with `true`, rebuilds prefer
    /// the flat dense grid (falling back to the hash grid when the point
    /// cloud is too sparse for it); with `false`, the hash grid is used
    /// unconditionally. Queries are bit-identical either way — this is a
    /// memory-layout knob, not a semantic one.
    pub fn set_flat_grid(&mut self, prefer_flat: bool) {
        if self.prefer_flat != prefer_flat {
            self.prefer_flat = prefer_flat;
            self.rebuild_grid();
        }
    }

    /// Whether the flat dense grid layout is currently active.
    pub fn uses_flat_grid(&self) -> bool {
        self.grid.is_flat()
    }

    /// Rebuilds the spatial index from the current positions — the O(N)
    /// recovery path the flat layout falls back on when a mutation
    /// escapes its bounding box or overflows a cell.
    fn rebuild_grid(&mut self) {
        self.grid = GridIndex::build(&self.positions, self.gamma.max(1e-9), self.prefer_flat);
    }

    /// Adds a node, returning its id. The spatial index is extended in
    /// place when it can be, rebuilt when the new point does not fit.
    pub fn add_node(&mut self, position: Point) -> NodeId {
        let id = NodeId(self.positions.len());
        self.positions.push(position);
        self.sensing_radius.push(0.0);
        self.distance_moved.push(0.0);
        if !self.grid.insert(id.0, position) {
            self.rebuild_grid();
        }
        id
    }

    /// Number of nodes `N`.
    #[inline]
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the network has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The shared transmission range `γ`.
    #[inline]
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// All node ids.
    pub fn ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.positions.len()).map(NodeId)
    }

    /// A by-value view of one node (see [`SensorNode`]).
    #[inline]
    pub fn node(&self, id: NodeId) -> SensorNode {
        SensorNode::view(
            id,
            self.positions[id.0],
            self.sensing_radius[id.0],
            self.distance_moved[id.0],
        )
    }

    /// Views of all nodes in id order.
    pub fn nodes(&self) -> impl Iterator<Item = SensorNode> + '_ {
        (0..self.len()).map(move |i| self.node(NodeId(i)))
    }

    /// Position of a node.
    #[inline]
    pub fn position(&self, id: NodeId) -> Point {
        self.positions[id.0]
    }

    /// All positions, indexed by node id.
    #[inline]
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// All sensing ranges, indexed by node id.
    #[inline]
    pub fn sensing_radii(&self) -> &[f64] {
        &self.sensing_radius
    }

    /// Moves a node, maintaining odometry and the spatial index.
    pub fn move_node(&mut self, id: NodeId, target: Point) {
        let old = self.positions[id.0];
        self.distance_moved[id.0] += old.distance(target);
        self.positions[id.0] = target;
        if !self.grid.relocate(id.0, old, target) {
            self.rebuild_grid();
        }
    }

    /// Moves a batch of nodes at once, maintaining odometry and feeding
    /// the spatial index one move-delta batch ([`GridIndex::apply_moves`])
    /// instead of per-node calls. Results are identical to calling
    /// [`Network::move_node`] per entry.
    pub fn apply_displacements(&mut self, moves: &[(NodeId, Point)]) {
        let positions = &mut self.positions;
        let distance_moved = &mut self.distance_moved;
        let ok = self.grid.apply_moves(moves.iter().map(|&(id, target)| {
            let old = positions[id.0];
            distance_moved[id.0] += old.distance(target);
            positions[id.0] = target;
            (id.0, old, target)
        }));
        if !ok {
            self.rebuild_grid();
        }
    }

    /// Repositions a node **without** touching odometry, maintaining the
    /// spatial index, and returns the previous position. The substrate
    /// for belief-perturbed evaluations (a node computing its local rule
    /// under forged neighbor claims): callers apply the claimed
    /// positions, compute, then restore the returned truth — the round
    /// trip leaves [`Network::total_distance_moved`] untouched.
    pub fn override_position(&mut self, id: NodeId, target: Point) -> Point {
        let old = self.positions[id.0];
        self.positions[id.0] = target;
        if !self.grid.relocate(id.0, old, target) {
            self.rebuild_grid();
        }
        old
    }

    /// Sets a node's sensing range.
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite ranges.
    pub fn set_sensing_radius(&mut self, id: NodeId, r: f64) {
        assert!(r.is_finite() && r >= 0.0, "invalid sensing radius {r}");
        self.sensing_radius[id.0] = r;
    }

    /// Removes the given nodes (duplicates and out-of-range ids ignored),
    /// compacting the network and **reassigning node ids** so that ids
    /// remain the dense range `0..len()`. Any previously held [`NodeId`]
    /// is invalidated. The odometry of removed nodes is retained in
    /// [`Network::total_distance_moved`]. Returns the number of nodes
    /// actually removed.
    ///
    /// This is the substrate for dynamic-event scenarios (node failure,
    /// battery depletion); the LAACAD round loop itself never removes
    /// nodes.
    pub fn remove_nodes(&mut self, ids: &[NodeId]) -> usize {
        let (doomed, removing) = self.doomed_bitmap(ids);
        if removing == 0 {
            return 0;
        }
        let mut w = 0;
        for (i, &dead) in doomed.iter().enumerate() {
            if dead {
                self.retired_distance += self.distance_moved[i];
            } else {
                self.positions[w] = self.positions[i];
                self.sensing_radius[w] = self.sensing_radius[i];
                self.distance_moved[w] = self.distance_moved[i];
                w += 1;
            }
        }
        self.positions.truncate(w);
        self.sensing_radius.truncate(w);
        self.distance_moved.truncate(w);
        self.rebuild_grid();
        removing
    }

    /// Marks the distinct, in-range ids among `ids`; the count is exactly
    /// what [`Network::remove_nodes`] would remove.
    fn doomed_bitmap(&self, ids: &[NodeId]) -> (Vec<bool>, usize) {
        let n = self.positions.len();
        let mut doomed = vec![false; n];
        for id in ids {
            if id.0 < n {
                doomed[id.0] = true;
            }
        }
        let removing = doomed.iter().filter(|&&d| d).count();
        (doomed, removing)
    }

    /// Number of distinct nodes among `ids` that currently exist — the
    /// exact removal count of [`Network::remove_nodes`] on the same
    /// input, for callers that must validate survivor counts before
    /// mutating.
    pub fn count_present(&self, ids: &[NodeId]) -> usize {
        self.doomed_bitmap(ids).1
    }

    /// Keeps only the nodes for which `keep` returns `true`; same id
    /// reassignment and odometry semantics as [`Network::remove_nodes`].
    /// Returns the number of nodes removed.
    pub fn retain_nodes(&mut self, mut keep: impl FnMut(&SensorNode) -> bool) -> usize {
        let doomed: Vec<NodeId> = (0..self.len())
            .map(NodeId)
            .filter(|&id| !keep(&self.node(id)))
            .collect();
        self.remove_nodes(&doomed)
    }

    /// Ids of nodes within Euclidean distance `radius` of `q` (inclusive),
    /// including any node located exactly at `q`.
    pub fn nodes_within(&self, q: Point, radius: f64) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.grid.within_into(&self.positions, q, radius, &mut out);
        out.into_iter().map(NodeId).collect()
    }

    /// [`Network::nodes_within`] into a caller-owned buffer (cleared
    /// first) — the allocation-free form the round engine uses.
    pub fn nodes_within_into(&self, q: Point, radius: f64, out: &mut Vec<usize>) {
        self.grid.within_into(&self.positions, q, radius, out);
    }

    /// One-hop neighbors of `id`: nodes within the transmission range `γ`
    /// (the paper's `N(n_i)`), excluding the node itself.
    pub fn one_hop_neighbors(&self, id: NodeId) -> Vec<NodeId> {
        self.nodes_within(self.positions[id.0], self.gamma)
            .into_iter()
            .filter(|&n| n != id)
            .collect()
    }

    /// [`Network::one_hop_neighbors`] into a caller-owned buffer (cleared
    /// first; indices ascending, `id` excluded).
    pub fn one_hop_neighbors_into(&self, id: NodeId, out: &mut Vec<usize>) {
        self.grid
            .within_into(&self.positions, self.positions[id.0], self.gamma, out);
        out.retain(|&i| i != id.0);
    }

    /// Maximum sensing range over the network — the paper's objective `R`.
    pub fn max_sensing_radius(&self) -> f64 {
        self.sensing_radius.iter().copied().fold(0.0, f64::max)
    }

    /// Minimum sensing range over the network (reported alongside `R` in
    /// Fig. 6 to show load balance).
    pub fn min_sensing_radius(&self) -> f64 {
        self.sensing_radius
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }

    /// Total distance moved by all nodes, including nodes that have since
    /// been removed (movement-energy reporting).
    pub fn total_distance_moved(&self) -> f64 {
        self.retired_distance + self.distance_moved.iter().sum::<f64>()
    }

    /// Per-node odometry, indexed by node id (snapshot serialization).
    #[inline]
    pub fn distances_moved(&self) -> &[f64] {
        &self.distance_moved
    }

    /// Odometry retired with removed nodes (snapshot serialization).
    #[inline]
    pub fn retired_distance(&self) -> f64 {
        self.retired_distance
    }

    /// Whether rebuilds prefer the flat dense grid layout — the knob as
    /// *configured* (contrast [`Network::uses_flat_grid`], which reports
    /// the layout actually in use after the sparsity fallback).
    #[inline]
    pub fn prefers_flat_grid(&self) -> bool {
        self.prefer_flat
    }

    /// Reconstructs a network from serialized struct-of-arrays state.
    /// The spatial index is rebuilt deterministically from the positions
    /// (query results are layout-independent, so a rebuilt index yields
    /// bit-identical behavior to the original).
    ///
    /// # Panics
    ///
    /// Panics when `gamma` is not strictly positive and finite, or when
    /// the parallel vectors disagree in length.
    pub fn from_parts(
        gamma: f64,
        positions: Vec<Point>,
        sensing_radius: Vec<f64>,
        distance_moved: Vec<f64>,
        retired_distance: f64,
        prefer_flat: bool,
    ) -> Self {
        assert!(
            gamma.is_finite() && gamma > 0.0,
            "transmission range must be positive, got {gamma}"
        );
        assert_eq!(positions.len(), sensing_radius.len());
        assert_eq!(positions.len(), distance_moved.len());
        let grid = GridIndex::build(&positions, gamma.max(1e-9), prefer_flat);
        Network {
            positions,
            sensing_radius,
            distance_moved,
            gamma,
            grid,
            prefer_flat,
            retired_distance,
        }
    }
}

impl std::fmt::Display for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "network[N={}, γ={}]", self.len(), self.gamma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_query() {
        let mut net = Network::new(0.15);
        let a = net.add_node(Point::new(0.0, 0.0));
        let b = net.add_node(Point::new(0.1, 0.0));
        let c = net.add_node(Point::new(1.0, 1.0));
        assert_eq!(net.len(), 3);
        assert_eq!(net.one_hop_neighbors(a), vec![b]);
        assert!(net.one_hop_neighbors(c).is_empty());
        assert_eq!(net.nodes_within(Point::new(0.05, 0.0), 0.06), vec![a, b]);
    }

    #[test]
    fn movement_updates_queries() {
        let mut net = Network::new(0.15);
        let a = net.add_node(Point::new(0.0, 0.0));
        let b = net.add_node(Point::new(1.0, 1.0));
        assert!(net.one_hop_neighbors(a).is_empty());
        net.move_node(b, Point::new(0.1, 0.0));
        assert_eq!(net.one_hop_neighbors(a), vec![b]);
        assert!(
            (net.node(b).distance_moved() - Point::new(1.0, 1.0).distance(Point::new(0.1, 0.0)))
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn radius_stats() {
        let mut net = Network::new(0.2);
        let a = net.add_node(Point::new(0.0, 0.0));
        let b = net.add_node(Point::new(1.0, 0.0));
        net.set_sensing_radius(a, 0.3);
        net.set_sensing_radius(b, 0.7);
        assert_eq!(net.max_sensing_radius(), 0.7);
        assert_eq!(net.min_sensing_radius(), 0.3);
        assert_eq!(net.sensing_radii(), &[0.3, 0.7]);
    }

    #[test]
    fn from_positions_builder() {
        let net = Network::from_positions(0.1, [Point::new(0.0, 0.0), Point::new(1.0, 1.0)]);
        assert_eq!(net.len(), 2);
        assert_eq!(net.position(NodeId(1)), Point::new(1.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "transmission range")]
    fn invalid_gamma_panics() {
        let _ = Network::new(0.0);
    }

    #[test]
    #[should_panic(expected = "invalid sensing radius")]
    fn invalid_sensing_radius_panics() {
        let mut net = Network::from_positions(0.1, [Point::ORIGIN]);
        net.set_sensing_radius(NodeId(0), f64::NAN);
    }

    #[test]
    fn remove_nodes_compacts_and_reindexes() {
        let mut net = Network::from_positions(
            0.5,
            [
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(2.0, 0.0),
                Point::new(3.0, 0.0),
            ],
        );
        net.move_node(NodeId(1), Point::new(1.0, 1.0)); // odometry 1.0
        net.move_node(NodeId(3), Point::new(3.0, 2.0)); // odometry 2.0
        let removed = net.remove_nodes(&[NodeId(1), NodeId(1), NodeId(99)]);
        assert_eq!(removed, 1);
        assert_eq!(net.len(), 3);
        // Survivors are reindexed densely and keep their positions.
        assert_eq!(net.position(NodeId(0)), Point::new(0.0, 0.0));
        assert_eq!(net.position(NodeId(1)), Point::new(2.0, 0.0));
        assert_eq!(net.position(NodeId(2)), Point::new(3.0, 2.0));
        for (i, node) in net.nodes().enumerate() {
            assert_eq!(node.id(), NodeId(i));
        }
        // The removed node's odometry is retained in the total.
        assert!((net.total_distance_moved() - 3.0).abs() < 1e-12);
        // Spatial queries reflect the removal.
        assert_eq!(
            net.nodes_within(Point::new(1.0, 1.0), 0.1),
            Vec::<NodeId>::new()
        );
    }

    #[test]
    fn retain_nodes_by_predicate() {
        let mut net = Network::from_positions(
            0.5,
            [
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(2.0, 0.0),
            ],
        );
        let removed = net.retain_nodes(|n| n.position().x < 1.5);
        assert_eq!(removed, 1);
        assert_eq!(net.len(), 2);
        assert!(net.positions().iter().all(|p| p.x < 1.5));
    }

    #[test]
    fn flat_grid_layout_is_equivalent() {
        let positions: Vec<Point> = (0..50)
            .map(|i| Point::new((i % 10) as f64 * 0.1, (i / 10) as f64 * 0.1))
            .collect();
        let mut flat = Network::from_positions(0.15, positions.iter().copied());
        flat.set_flat_grid(true);
        assert!(flat.uses_flat_grid());
        let hash = Network::from_positions(0.15, positions.iter().copied());
        assert!(!hash.uses_flat_grid());
        for i in 0..flat.len() {
            assert_eq!(
                flat.one_hop_neighbors(NodeId(i)),
                hash.one_hop_neighbors(NodeId(i))
            );
        }
        // A move that escapes the flat bounding box transparently
        // rebuilds; queries stay correct.
        flat.move_node(NodeId(0), Point::new(4.0, 4.0));
        assert_eq!(
            flat.nodes_within(Point::new(4.0, 4.0), 0.1),
            vec![NodeId(0)]
        );
    }
}
