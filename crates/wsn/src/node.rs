//! Sensor nodes.

use laacad_geom::Point;

/// Identifier of a sensor node within its [`crate::Network`].
///
/// A newtype over the node's index — stable for the lifetime of the
/// network (nodes are never removed from the middle; the min-node
/// adaptation of Sec. IV-C rebuilds networks instead).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The underlying index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(i: usize) -> Self {
        NodeId(i)
    }
}

/// A mobile sensor node: position `u_i`, tunable sensing range `r_i`, and
/// cumulative movement odometry (movement energy is a "one-time
/// investment" in the paper's model, but we account for it anyway so the
/// trade-off can be reported).
///
/// Inside a [`crate::Network`] the per-node fields live in parallel
/// struct-of-arrays vectors; `SensorNode` is the by-value **view** the
/// API hands out ([`crate::Network::node`] / [`crate::Network::nodes`]).
/// It is `Copy` — a snapshot, not a handle: mutating a view does not
/// write back into the network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensorNode {
    id: NodeId,
    position: Point,
    sensing_radius: f64,
    distance_moved: f64,
}

impl SensorNode {
    /// Creates a node at `position` with a zero sensing range.
    pub fn new(id: NodeId, position: Point) -> Self {
        SensorNode {
            id,
            position,
            sensing_radius: 0.0,
            distance_moved: 0.0,
        }
    }

    /// The node's identifier.
    #[inline]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Current location `u_i`.
    #[inline]
    pub fn position(&self) -> Point {
        self.position
    }

    /// Current sensing range `r_i`.
    #[inline]
    pub fn sensing_radius(&self) -> f64 {
        self.sensing_radius
    }

    /// Total distance travelled so far.
    #[inline]
    pub fn distance_moved(&self) -> f64 {
        self.distance_moved
    }

    /// Assembles a view over a network's struct-of-arrays fields.
    pub(crate) fn view(
        id: NodeId,
        position: Point,
        sensing_radius: f64,
        distance_moved: f64,
    ) -> Self {
        SensorNode {
            id,
            position,
            sensing_radius,
            distance_moved,
        }
    }

    /// Moves the node to `target`, updating the odometer.
    pub fn move_to(&mut self, target: Point) {
        self.distance_moved += self.position.distance(target);
        self.position = target;
    }

    /// Sets the sensing range.
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite ranges.
    pub fn set_sensing_radius(&mut self, r: f64) {
        assert!(r.is_finite() && r >= 0.0, "invalid sensing radius {r}");
        self.sensing_radius = r;
    }

    /// Returns `true` when the node's sensing disk covers `v`
    /// (the paper's indicator `f(v, u_i, r_i)`, Eq. 1).
    pub fn covers(&self, v: Point) -> bool {
        self.position.distance_sq(v) <= self.sensing_radius * self.sensing_radius + 1e-12
    }
}

impl std::fmt::Display for SensorNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}@{} r={:.4}",
            self.id, self.position, self.sensing_radius
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn movement_accumulates_odometer() {
        let mut n = SensorNode::new(NodeId(0), Point::new(0.0, 0.0));
        n.move_to(Point::new(3.0, 4.0));
        n.move_to(Point::new(3.0, 0.0));
        assert!((n.distance_moved() - 9.0).abs() < 1e-12);
        assert_eq!(n.position(), Point::new(3.0, 0.0));
    }

    #[test]
    fn coverage_indicator() {
        let mut n = SensorNode::new(NodeId(1), Point::new(0.0, 0.0));
        n.set_sensing_radius(1.0);
        assert!(n.covers(Point::new(0.5, 0.5)));
        assert!(n.covers(Point::new(1.0, 0.0))); // boundary
        assert!(!n.covers(Point::new(1.1, 0.0)));
    }

    #[test]
    #[should_panic(expected = "invalid sensing radius")]
    fn negative_radius_rejected() {
        let mut n = SensorNode::new(NodeId(0), Point::ORIGIN);
        n.set_sensing_radius(-1.0);
    }

    #[test]
    fn node_id_display_and_conversion() {
        let id: NodeId = 7usize.into();
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "n7");
    }
}
