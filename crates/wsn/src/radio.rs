//! The unit-disk communication graph.
//!
//! Two nodes can exchange messages iff they are within the transmission
//! range `γ` of each other. Multi-hop communication follows graph paths;
//! [`hop_distances`] gives BFS hop counts, and [`connected_components`]
//! partitions the network (boundary nodes of Algorithm 2 stop expanding
//! their rings once the ring saturates their component).

use crate::network::Network;
use crate::node::NodeId;
use std::collections::VecDeque;

/// Message-cost bookkeeping for the localized algorithm.
///
/// The paper argues communication cost is negligible post-deployment; we
/// still count messages so experiments can report the cost of autonomy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MessageStats {
    /// Point-to-point transmissions.
    pub unicast: u64,
    /// Local broadcasts (one per node per ring expansion).
    pub broadcast: u64,
}

impl MessageStats {
    /// Adds another counter into this one.
    pub fn absorb(&mut self, other: MessageStats) {
        self.unicast += other.unicast;
        self.broadcast += other.broadcast;
    }

    /// Total message count.
    pub fn total(&self) -> u64 {
        self.unicast + self.broadcast
    }
}

impl std::fmt::Display for MessageStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} unicast + {} broadcast", self.unicast, self.broadcast)
    }
}

/// BFS hop distance from `source` to every node (`usize::MAX` when
/// unreachable).
pub fn hop_distances(net: &Network, source: NodeId) -> Vec<usize> {
    let n = net.len();
    let mut dist = vec![usize::MAX; n];
    dist[source.index()] = 0;
    let mut queue = VecDeque::from([source]);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()];
        for v in net.one_hop_neighbors(u) {
            if dist[v.index()] == usize::MAX {
                dist[v.index()] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Connected components of the communication graph, as a component id per
/// node.
pub fn connected_components(net: &Network) -> Vec<usize> {
    let n = net.len();
    let mut comp = vec![usize::MAX; n];
    let mut next = 0;
    for s in 0..n {
        if comp[s] != usize::MAX {
            continue;
        }
        comp[s] = next;
        let mut queue = VecDeque::from([NodeId(s)]);
        while let Some(u) = queue.pop_front() {
            for v in net.one_hop_neighbors(u) {
                if comp[v.index()] == usize::MAX {
                    comp[v.index()] = next;
                    queue.push_back(v);
                }
            }
        }
        next += 1;
    }
    comp
}

/// Returns `true` when the whole network is one component.
///
/// The paper's connectivity discussion (Sec. IV-C) argues k-coverage with
/// `γ ≥ r_i` implies degree ≥ 6 and hence connectivity; experiments verify
/// this claim with this function.
pub fn is_connected(net: &Network) -> bool {
    if net.len() <= 1 {
        return true;
    }
    connected_components(net).iter().all(|&c| c == 0)
}

/// Degree statistics of the communication graph: (min, mean, max).
pub fn degree_stats(net: &Network) -> (usize, f64, usize) {
    let n = net.len();
    if n == 0 {
        return (0, 0.0, 0);
    }
    let degrees: Vec<usize> = (0..n)
        .map(|i| net.one_hop_neighbors(NodeId(i)).len())
        .collect();
    let min = *degrees.iter().min().expect("non-empty");
    let max = *degrees.iter().max().expect("non-empty");
    let mean = degrees.iter().sum::<usize>() as f64 / n as f64;
    (min, mean, max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use laacad_geom::Point;

    fn chain(n: usize, spacing: f64, gamma: f64) -> Network {
        Network::from_positions(gamma, (0..n).map(|i| Point::new(i as f64 * spacing, 0.0)))
    }

    #[test]
    fn hop_distances_along_a_chain() {
        let net = chain(5, 0.1, 0.12);
        let d = hop_distances(&net, NodeId(0));
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn unreachable_nodes_are_max() {
        let net = Network::from_positions(0.1, [Point::new(0.0, 0.0), Point::new(5.0, 5.0)]);
        let d = hop_distances(&net, NodeId(0));
        assert_eq!(d[0], 0);
        assert_eq!(d[1], usize::MAX);
    }

    #[test]
    fn components_and_connectivity() {
        let net = Network::from_positions(
            0.15,
            [
                Point::new(0.0, 0.0),
                Point::new(0.1, 0.0),
                Point::new(2.0, 2.0),
                Point::new(2.1, 2.0),
            ],
        );
        let comp = connected_components(&net);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_ne!(comp[0], comp[2]);
        assert!(!is_connected(&net));
        let whole = chain(4, 0.1, 0.15);
        assert!(is_connected(&whole));
    }

    #[test]
    fn degree_statistics() {
        let net = chain(3, 0.1, 0.12);
        let (min, mean, max) = degree_stats(&net);
        assert_eq!(min, 1); // endpoints
        assert_eq!(max, 2); // middle
        assert!((mean - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn message_stats_accumulate() {
        let mut a = MessageStats::default();
        a.absorb(MessageStats {
            unicast: 3,
            broadcast: 2,
        });
        a.absorb(MessageStats {
            unicast: 1,
            broadcast: 0,
        });
        assert_eq!(a.total(), 6);
    }

    #[test]
    fn empty_and_singleton_networks_are_connected() {
        let empty = Network::new(0.1);
        assert!(is_connected(&empty));
        let single = Network::from_positions(0.1, [Point::new(0.0, 0.0)]);
        assert!(is_connected(&single));
    }
}
