//! Motion execution with step-size damping and free-space projection.
//!
//! Algorithm 1 line 5: `u_i ← u_i + α(c_i − u_i)` with step size
//! `α ∈ (0, 1]` "to avoid oscillation". When the target area has
//! obstacles, a raw step may land inside one; the executor projects the
//! landing point back into free space (see DESIGN.md §3).

use crate::network::Network;
use crate::node::NodeId;
use laacad_region::Region;

/// Outcome of one motion step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepOutcome {
    /// Distance actually travelled.
    pub moved: f64,
    /// Distance between the pre-step position and the raw target
    /// (`‖c_i − u_i‖`) — Algorithm 1's termination quantity.
    pub target_distance: f64,
    /// Whether the landing point had to be projected into free space.
    pub projected: bool,
}

/// Moves `id` one damped step toward `target`.
///
/// # Panics
///
/// Panics when `alpha` is outside `(0, 1]` (the paper's convergence proof
/// covers exactly that range, Prop. 4).
pub fn step_toward(
    net: &mut Network,
    id: NodeId,
    target: laacad_geom::Point,
    alpha: f64,
    area: Option<&Region>,
) -> StepOutcome {
    assert!(
        alpha > 0.0 && alpha <= 1.0,
        "step size α must lie in (0, 1], got {alpha}"
    );
    let u = net.position(id);
    let target_distance = u.distance(target);
    let raw = u.lerp(target, alpha);
    let (landing, projected) = match area {
        Some(region) if !region.contains(raw) => (region.project(raw), true),
        _ => (raw, false),
    };
    net.move_node(id, landing);
    StepOutcome {
        moved: u.distance(landing),
        target_distance,
        projected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laacad_geom::{Point, Polygon};

    #[test]
    fn full_step_reaches_target() {
        let mut net = Network::from_positions(0.1, [Point::new(0.0, 0.0)]);
        let out = step_toward(&mut net, NodeId(0), Point::new(1.0, 0.0), 1.0, None);
        assert_eq!(net.position(NodeId(0)), Point::new(1.0, 0.0));
        assert!((out.moved - 1.0).abs() < 1e-12);
        assert!((out.target_distance - 1.0).abs() < 1e-12);
        assert!(!out.projected);
    }

    #[test]
    fn damped_step_moves_fractionally() {
        let mut net = Network::from_positions(0.1, [Point::new(0.0, 0.0)]);
        step_toward(&mut net, NodeId(0), Point::new(1.0, 0.0), 0.25, None);
        assert!(net
            .position(NodeId(0))
            .approx_eq(Point::new(0.25, 0.0), 1e-12));
    }

    #[test]
    fn obstacle_landing_is_projected() {
        let outer = Polygon::rectangle(Point::new(0.0, 0.0), Point::new(10.0, 10.0)).unwrap();
        let hole = Polygon::rectangle(Point::new(4.0, 4.0), Point::new(6.0, 6.0)).unwrap();
        let region = Region::with_holes(outer, vec![hole]).unwrap();
        let mut net = Network::from_positions(0.1, [Point::new(3.0, 5.0)]);
        // Full step toward the obstacle's center lands inside → projected.
        let out = step_toward(
            &mut net,
            NodeId(0),
            Point::new(5.0, 5.0),
            1.0,
            Some(&region),
        );
        assert!(out.projected);
        let p = net.position(NodeId(0));
        assert!(region.contains(p));
        // The landing point sits on the hole boundary, one unit from the
        // hole center (which edge wins the tie is an implementation detail).
        assert!(
            (p.distance(Point::new(5.0, 5.0)) - 1.0).abs() < 1e-6,
            "landed at {p}"
        );
    }

    #[test]
    #[should_panic(expected = "step size")]
    fn invalid_alpha_panics() {
        let mut net = Network::from_positions(0.1, [Point::new(0.0, 0.0)]);
        let _ = step_toward(&mut net, NodeId(0), Point::new(1.0, 0.0), 1.5, None);
    }
}
