//! Local coordinate systems from ranging (Algorithm 2 line 4).
//!
//! A node that cannot rely on a positioning service builds a *relative*
//! map of its ring neighborhood: measure pairwise ranges, embed them with
//! classical MDS, and work in that frame. The frame is an unknown rigid
//! transform (possibly reflected) of the world frame — irrelevant for
//! LAACAD, whose per-round output is a motion *relative to neighbors*.
//!
//! The simulator executes motion in world coordinates, so
//! [`LocalFrame::to_world`] aligns the frame onto the (simulator-known)
//! true positions with a Procrustes fit; the residual of that fit is the
//! localization error a real deployment would suffer, and is exposed as
//! [`LocalFrame::alignment_rmse`].

use crate::mds::{classical_mds, MdsError};
use crate::node::NodeId;
use crate::ranging::{measure_all, RangingNoise};
use laacad_geom::transform::{procrustes, Isometry};
use laacad_geom::Point;

/// A ranging-derived local coordinate system over a node neighborhood.
#[derive(Debug, Clone)]
pub struct LocalFrame {
    ids: Vec<NodeId>,
    local: Vec<Point>,
    to_world: Isometry,
    rmse: f64,
}

impl LocalFrame {
    /// Builds the frame for `members` (the center must be included) using
    /// measured ranges under `noise`.
    ///
    /// `true_positions[i]` is the world position of `members[i]`; it is
    /// used (a) to simulate the range measurements and (b) to compute the
    /// world alignment the simulator needs to execute motion.
    ///
    /// # Errors
    ///
    /// Propagates [`MdsError`] for degenerate neighborhoods (fewer than two
    /// distinct positions).
    pub fn build(
        members: &[NodeId],
        true_positions: &[Point],
        noise: &RangingNoise,
        seed: u64,
    ) -> Result<Self, MdsError> {
        if members.len() != true_positions.len() || members.len() < 2 {
            return Err(MdsError::BadInput);
        }
        let ranges = measure_all(true_positions, noise, seed);
        let embedding = classical_mds(&ranges)?;
        let to_world =
            procrustes(&embedding.coords, true_positions).map_err(|_| MdsError::Degenerate)?;
        let rmse = (embedding
            .coords
            .iter()
            .zip(true_positions)
            .map(|(c, p)| to_world.apply(*c).distance_sq(*p))
            .sum::<f64>()
            / members.len() as f64)
            .sqrt();
        Ok(LocalFrame {
            ids: members.to_vec(),
            local: embedding.coords,
            to_world,
            rmse,
        })
    }

    /// Members of the frame, aligned with [`LocalFrame::local_positions`].
    pub fn ids(&self) -> &[NodeId] {
        &self.ids
    }

    /// The local (MDS) coordinates of the members.
    pub fn local_positions(&self) -> &[Point] {
        &self.local
    }

    /// Local coordinates of a specific member, if present.
    pub fn local_of(&self, id: NodeId) -> Option<Point> {
        self.ids
            .iter()
            .position(|&m| m == id)
            .map(|i| self.local[i])
    }

    /// Maps a point expressed in the local frame into world coordinates.
    pub fn to_world(&self, p: Point) -> Point {
        self.to_world.apply(p)
    }

    /// Root-mean-square alignment error (zero for noiseless ranging).
    pub fn alignment_rmse(&self) -> f64 {
        self.rmse
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn members(n: usize) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn noiseless_frame_is_exact() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.2),
            Point::new(0.4, 0.9),
            Point::new(-0.5, 0.3),
        ];
        let f = LocalFrame::build(&members(4), &pts, &RangingNoise::NONE, 1).unwrap();
        assert!(f.alignment_rmse() < 1e-7);
        // Round trip: local → world reproduces the truth.
        for (i, &p) in pts.iter().enumerate() {
            let w = f.to_world(f.local_positions()[i]);
            assert!(w.approx_eq(p, 1e-6), "{w} vs {p}");
        }
    }

    #[test]
    fn geometry_is_preserved_locally() {
        let pts = vec![
            Point::new(2.0, 1.0),
            Point::new(3.0, 1.0),
            Point::new(2.0, 2.5),
        ];
        let f = LocalFrame::build(&members(3), &pts, &RangingNoise::NONE, 2).unwrap();
        let l = f.local_positions();
        for i in 0..3 {
            for j in 0..3 {
                assert!((l[i].distance(l[j]) - pts[i].distance(pts[j])).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn noisy_frame_reports_rmse() {
        let pts: Vec<Point> = (0..8)
            .map(|i| Point::new((i % 3) as f64, (i / 3) as f64))
            .collect();
        let noise = RangingNoise::new(0.05, 0.0);
        let f = LocalFrame::build(&members(8), &pts, &noise, 3).unwrap();
        assert!(f.alignment_rmse() > 0.0);
        assert!(f.alignment_rmse() < 0.3, "rmse {}", f.alignment_rmse());
    }

    #[test]
    fn lookup_by_id() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)];
        let ids = vec![NodeId(5), NodeId(9)];
        let f = LocalFrame::build(&ids, &pts, &RangingNoise::NONE, 4).unwrap();
        assert!(f.local_of(NodeId(5)).is_some());
        assert!(f.local_of(NodeId(7)).is_none());
    }

    #[test]
    fn degenerate_input_errors() {
        let p = Point::new(1.0, 1.0);
        assert!(LocalFrame::build(&members(3), &[p, p, p], &RangingNoise::NONE, 5).is_err());
        assert!(LocalFrame::build(&members(1), &[p], &RangingNoise::NONE, 5).is_err());
    }
}
