//! Property tests for the WSN substrate.

use laacad_geom::transform::procrustes;
use laacad_geom::Point;
use laacad_wsn::mds::classical_mds;
use laacad_wsn::multihop::ring_neighborhood;
use laacad_wsn::spatial::SpatialGrid;
use laacad_wsn::{FlatGrid, Network, NodeId};
use proptest::prelude::*;

fn points(min: usize, max: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(
        (0.0f64..1.0, 0.0f64..1.0).prop_map(|(x, y)| Point::new(x, y)),
        min..max,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn spatial_grid_matches_brute_force(
        pts in points(1, 80),
        qx in -0.2f64..1.2, qy in -0.2f64..1.2,
        r in 0.0f64..0.8,
        cell in 0.05f64..0.5,
    ) {
        let grid = SpatialGrid::build(&pts, cell);
        let q = Point::new(qx, qy);
        let got = grid.within(&pts, q, r);
        let expect: Vec<usize> = (0..pts.len())
            .filter(|&i| pts[i].distance(q) <= r + 1e-9)
            .collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn flat_grid_matches_hash_grid(
        pts in points(1, 80),
        moves in prop::collection::vec(
            (0usize..80, 0.0f64..1.0, 0.0f64..1.0),
            0..12,
        ),
        queries in prop::collection::vec(
            (-0.2f64..1.2, -0.2f64..1.2, 0.0f64..0.8),
            1..8,
        ),
        cell in 0.05f64..0.5,
    ) {
        // The flat layout must be observationally identical to the hash
        // layout under any interleaving of batched moves and queries:
        // `within` returns byte-identical sorted index lists throughout.
        let mut pts_flat = pts.clone();
        let mut pts_hash = pts;
        let flat = FlatGrid::try_build(&pts_flat, cell);
        prop_assume!(flat.is_some()); // sparse clouds fall back to hash
        let mut flat = flat.unwrap();
        let mut hash = SpatialGrid::build(&pts_hash, cell);
        for (chunk, &(qx, qy, r)) in queries.iter().enumerate() {
            // Interleave: apply a slice of the move batch before each query.
            let lo = chunk * moves.len() / queries.len();
            let hi = (chunk + 1) * moves.len() / queries.len();
            // Dedup per batch: `from` positions are captured eagerly, so a
            // node may move at most once per `apply_moves` call (as in the
            // round engine, where each node displaces once per round).
            let mut seen = std::collections::HashSet::new();
            let batch: Vec<(usize, Point, Point)> = moves[lo..hi]
                .iter()
                .filter(|(i, _, _)| *i < pts_flat.len() && seen.insert(*i))
                .map(|&(i, x, y)| (i, pts_flat[i], Point::new(x, y)))
                .collect();
            let ok = flat.apply_moves(batch.iter().copied().inspect(|&(i, _, new)| {
                pts_flat[i] = new;
            }));
            hash.apply_moves(batch.iter().copied().inspect(|&(i, _, new)| {
                pts_hash[i] = new;
            }));
            prop_assume!(ok); // a move out of the flat bbox forces a rebuild
            prop_assert_eq!(&pts_flat, &pts_hash);
            let q = Point::new(qx, qy);
            let got = flat.within(&pts_flat, q, r);
            let expect = hash.within(&pts_hash, q, r);
            prop_assert_eq!(got, expect);
        }
    }

    #[test]
    fn mds_reconstructs_geometry(pts in points(3, 20)) {
        let d: Vec<Vec<f64>> = pts
            .iter()
            .map(|a| pts.iter().map(|b| a.distance(*b)).collect())
            .collect();
        // Degenerate clouds (all nearly coincident) are rejected upstream.
        let spread = pts
            .iter()
            .flat_map(|a| pts.iter().map(move |b| a.distance(*b)))
            .fold(0.0, f64::max);
        prop_assume!(spread > 1e-3);
        let e = classical_mds(&d).unwrap();
        let t = procrustes(&e.coords, &pts);
        prop_assume!(t.is_ok());
        let t = t.unwrap();
        for (c, p) in e.coords.iter().zip(&pts) {
            prop_assert!(t.apply(*c).distance(*p) < 1e-5, "mds drift at {p}");
        }
    }

    #[test]
    fn ring_members_are_euclidean_subset(pts in points(2, 50), rho in 0.05f64..1.0) {
        let net = Network::from_positions(0.2, pts.iter().copied());
        let ring = ring_neighborhood(&net, NodeId(0), rho);
        for m in &ring.members {
            prop_assert!(net.position(*m).distance(pts[0]) <= rho + 1e-9);
            prop_assert_ne!(*m, NodeId(0));
        }
        // Members are sorted and unique (BFS + index order).
        let mut sorted = ring.members.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted, ring.members.clone());
    }

    #[test]
    fn ring_grows_monotonically_with_rho(pts in points(2, 40)) {
        let net = Network::from_positions(0.25, pts.iter().copied());
        let small = ring_neighborhood(&net, NodeId(0), 0.2);
        let large = ring_neighborhood(&net, NodeId(0), 0.6);
        for m in &small.members {
            prop_assert!(large.members.contains(m), "member {m} lost on expansion");
        }
    }

    #[test]
    fn movement_odometer_is_additive(
        pts in points(1, 10),
        moves in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..8),
    ) {
        let mut net = Network::from_positions(0.2, pts.iter().copied());
        let mut expect = 0.0;
        let mut prev = pts[0];
        for (x, y) in moves {
            let next = Point::new(x, y);
            expect += prev.distance(next);
            net.move_node(NodeId(0), next);
            prev = next;
        }
        prop_assert!((net.node(NodeId(0)).distance_moved() - expect).abs() < 1e-9);
        prop_assert!((net.total_distance_moved() - expect).abs() < 1e-9);
    }
}
